// The Fig. 9 compile pipeline, one pass per phase. Behavior (selected
// schedules, tuning statistics, metric/span names) is kept identical to the
// former monolithic Compiler::CompileUncached: the pipeline/tuning loops
// preserve the deterministic indexed-slot + in-order-fold structure, and the
// argmin over candidates is serial with strict less-than (first wins).
#include <algorithm>
#include <optional>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pass/pass.h"
#include "src/schedule/lowering.h"
#include "src/schedule/partitioner.h"
#include "src/support/logging.h"
#include "src/support/thread_pool.h"

namespace spacefusion {
namespace {

SlicingOptions SlicingOptionsFrom(const CompileOptions& options) {
  SlicingOptions slicing;
  slicing.enable_temporal = options.enable_temporal_slicing;
  slicing.search = options.search;
  return slicing;
}

// Allocates one CompiledSubprogram slot per candidate program (Sec. 5.3),
// shared by the tuning/lowering/estimation passes.
void EnsureCandidateSlots(CompilationState* state) {
  if (state->candidates.size() == state->pipeline.candidates.size()) {
    return;
  }
  state->candidates.assign(state->pipeline.candidates.size(), CompiledSubprogram{});
  for (CompiledSubprogram& candidate : state->candidates) {
    candidate.candidate_programs = static_cast<int>(state->pipeline.candidates.size());
  }
}

// Phase boundary 1 (entry): the input graph. Rejecting a malformed graph
// here — with structured diagnostics — beats an SF_CHECK abort deep in
// slicing.
class BuildSmgPass : public Pass {
 public:
  const char* name() const override { return "BuildSmg"; }

  Status VerifyBefore(CompilationState* state) override {
    ScopedSpan verify_span("verify.graph", "verify");
    DiagnosticReport report;
    report.SetContext(state->graph->name());
    VerifyGraph(*state->graph, &report);
    verify_span.Arg("diagnostics", static_cast<std::int64_t>(report.diagnostics().size()));
    if (!report.ok()) {
      SF_COUNTER_ADD("verify.rejected_inputs", 1);
      return report.ToStatus(StatusCode::kInvalidArgument);
    }
    return Status::Ok();
  }

  Status Run(CompilationState* state) override {
    // Program pre-processing: independent chains (e.g. the three projections
    // of QKV) become their own fused SMGs; fusing them would build a fused
    // space over unrelated dimensions.
    state->components = SplitConnectedComponents(*state->graph);
    state->component_smgs.clear();
    for (const Graph& component : state->components) {
      SF_ASSIGN_OR_RETURN(SmgBuildResult built, BuildSmg(component));
      state->component_smgs.push_back(std::move(built));
    }
    return Status::Ok();
  }
};

class SlicingPipelinePass : public Pass {
 public:
  const char* name() const override { return "SlicingPipeline"; }

  Status Run(CompilationState* state) override {
    const SlicingOptions slicing = SlicingOptionsFrom(*state->options);
    const ResourceConfig& rc = state->rc;
    ScopedSpan pipeline_span("compiler.pipeline");
    const std::vector<Graph>& components = state->components;

    // Concatenates per-graph pipelines into one candidate program. The
    // pieces are independent subgraphs, so their pipelines run concurrently
    // into indexed slots; the merge (and error selection) walks the slots
    // in piece order, keeping the result identical to the serial loop.
    auto compile_pieces = [&](const std::vector<Graph>& pieces) -> StatusOr<ProgramCandidate> {
      std::vector<std::optional<StatusOr<PipelineResult>>> parts(pieces.size());
      PhaseAccumulator* phase_stack = obs_internal::CurrentPhaseAccumulator();
      GlobalThreadPool().ParallelFor(
          static_cast<std::int64_t>(pieces.size()),
          [&, phase_stack](std::int64_t begin, std::int64_t end) {
            ScopedPhaseHandoff handoff(phase_stack);
            for (std::int64_t i = begin; i < end; ++i) {
              parts[static_cast<size_t>(i)] =
                  RunSlicingPipeline(pieces[static_cast<size_t>(i)], rc, slicing);
            }
          });
      ProgramCandidate candidate;
      for (std::optional<StatusOr<PipelineResult>>& part : parts) {
        if (!part->ok()) {
          return part->status();
        }
        for (SlicingResult& kernel : part->value().candidates.front().kernels) {
          candidate.kernels.push_back(std::move(kernel));
        }
        candidate.partition_rounds += part->value().candidates.front().partition_rounds;
      }
      return candidate;
    };

    if (components.size() == 1) {
      SF_ASSIGN_OR_RETURN(state->pipeline, RunSlicingPipeline(*state->graph, rc, slicing));
    } else {
      SF_ASSIGN_OR_RETURN(ProgramCandidate fused, compile_pieces(components));
      state->pipeline.candidates.push_back(std::move(fused));
    }

    // Sec. 5.3 candidate exploration: the maximally fused program competes
    // against a conservatively split one (matmuls isolated, MI runs fused) —
    // fusion across giant-weight GEMM chains is not always profitable, and
    // the tuner decides by measurement.
    {
      std::vector<Graph> split_pieces;
      for (const Graph& component : components) {
        for (Graph& piece : SplitAtComputeBoundaries(component)) {
          split_pieces.push_back(std::move(piece));
        }
      }
      if (split_pieces.size() > components.size()) {
        StatusOr<ProgramCandidate> split = compile_pieces(split_pieces);
        if (split.ok()) {
          state->pipeline.candidates.push_back(std::move(split).value());
        }
      }
    }
    pipeline_span.Arg("candidates", static_cast<std::int64_t>(state->pipeline.candidates.size()));
    return Status::Ok();
  }
};

// Search spaces are enumerated inside the slicing pipeline (schedulability
// and enumeration are one fixpoint); this pass accounts for what came out —
// the candidate-program histogram, the Table 6 fusion-pattern statistics,
// and the total enumerated-config count — and carries the kFull sweep over
// every candidate config as its exit invariant.
class EnumerateConfigsPass : public Pass {
 public:
  const char* name() const override { return "EnumerateConfigs"; }

  Status Run(CompilationState* state) override {
    SF_HISTOGRAM_OBSERVE("compiler.candidate_programs",
                         static_cast<double>(state->pipeline.candidates.size()));
    // Every *discovered* fusion counts toward the pattern statistics, even
    // if tuning ultimately prefers another candidate program (Table 6 counts
    // what the scheduler can fuse, not what it deploys).
    state->enumerated_configs = 0;
    for (const ProgramCandidate& candidate : state->pipeline.candidates) {
      for (const SlicingResult& kernel : candidate.kernels) {
        state->enumerated_configs += static_cast<std::int64_t>(kernel.configs.size());
        if (state->fusion != nullptr) {
          state->fusion->Record(kernel.schedule.graph);
        }
      }
    }
    return Status::Ok();
  }

  // Full mode: every candidate program the pipeline enumerated is verified
  // before tuning — each kernel's SMG build, plus slicing legality and
  // memory plan under every enumerated config. Violations here are compiler
  // bugs (the pipeline produced them), hence kInternal.
  Status VerifyAfter(CompilationState* state) override {
    if (state->options->verify != VerifyMode::kFull) {
      return Status::Ok();
    }
    ScopedSpan verify_span("verify.candidates", "verify");
    DiagnosticReport report;
    std::int64_t configs_checked = 0;
    for (const ProgramCandidate& candidate : state->pipeline.candidates) {
      for (const SlicingResult& kernel : candidate.kernels) {
        report.SetContext(kernel.schedule.graph.name());
        VerifyGraph(kernel.schedule.graph, &report);
        VerifySmgBuild(kernel.schedule.graph, kernel.schedule.built, &report);
        for (const ScheduleConfig& config : kernel.configs) {
          SmgSchedule probe = kernel.schedule;
          probe.ApplyConfig(config);
          PlanMemory(&probe, state->rc);
          VerifySlicing(probe, &report);
          VerifyMemoryPlan(probe, state->rc, &report);
          ++configs_checked;
        }
      }
    }
    verify_span.Arg("configs", configs_checked)
        .Arg("diagnostics", static_cast<std::int64_t>(report.diagnostics().size()));
    SF_COUNTER_ADD("verify.candidate_configs_checked", configs_checked);
    if (!report.ok()) {
      return report.ToStatus(StatusCode::kInternal);
    }
    return Status::Ok();
  }
};

class TunePass : public Pass {
 public:
  const char* name() const override { return "Tune"; }

  Status Run(CompilationState* state) override {
    EnsureCandidateSlots(state);
    for (size_t ci = 0; ci < state->pipeline.candidates.size(); ++ci) {
      ProgramCandidate& candidate = state->pipeline.candidates[ci];
      // The candidate's kernels are independent SMG blocks: tune them
      // concurrently (each TuneKernel further parallelizes its config sweep
      // when it lands on the caller), then fold the stats in kernel order
      // so the totals are deterministic.
      std::vector<TuningStats> kernel_stats(candidate.kernels.size());
      PhaseAccumulator* phase_stack = obs_internal::CurrentPhaseAccumulator();
      GlobalThreadPool().ParallelFor(
          static_cast<std::int64_t>(candidate.kernels.size()),
          [&, phase_stack](std::int64_t begin, std::int64_t end) {
            ScopedPhaseHandoff handoff(phase_stack);
            for (std::int64_t i = begin; i < end; ++i) {
              kernel_stats[static_cast<size_t>(i)] =
                  TuneKernel(&candidate.kernels[static_cast<size_t>(i)], *state->cost, state->rc,
                             state->options->tuner, state->cost_cache);
            }
          });
      for (TuningStats& stats : kernel_stats) {
        state->total_tuning_s += stats.simulated_tuning_seconds;
        state->configs_tried += stats.configs_tried;
        state->configs_screened += stats.configs_screened;
        state->configs_transfer_seeded += stats.configs_transfer_seeded;
        state->candidates[ci].tuning.configs_early_quit += stats.configs_early_quit;
        if (stats.transfer_signature != 0 && !stats.admitted_configs.empty()) {
          state->tuned_kernels.push_back(
              {stats.transfer_signature, std::move(stats.admitted_configs)});
        }
      }
    }
    return Status::Ok();
  }
};

// Ablation replacement for Tune (enable_auto_scheduling=false): every
// kernel takes the expert configuration instead of a measured sweep.
class ExpertConfigPass : public Pass {
 public:
  const char* name() const override { return "ExpertConfig"; }

  Status Run(CompilationState* state) override {
    EnsureCandidateSlots(state);
    for (ProgramCandidate& candidate : state->pipeline.candidates) {
      for (SlicingResult& kernel : candidate.kernels) {
        ApplyExpertConfig(&kernel, state->rc);
      }
    }
    return Status::Ok();
  }
};

// Re-derives every kernel's memory plan from its chosen config. PlanMemory
// is a pure function of (schedule, resource config) — the tuner already
// planned the winning config, so this recompute is idempotent — but running
// it as its own pass makes the plan an explicit pipeline artifact and keeps
// the plan correct under pass lists whose config assignment skipped it.
class PlanMemoryPass : public Pass {
 public:
  const char* name() const override { return "PlanMemory"; }

  Status Run(CompilationState* state) override {
    for (ProgramCandidate& candidate : state->pipeline.candidates) {
      for (SlicingResult& kernel : candidate.kernels) {
        PlanMemory(&kernel.schedule, state->rc);
      }
    }
    return Status::Ok();
  }
};

class LowerPass : public Pass {
 public:
  const char* name() const override { return "Lower"; }

  Status Run(CompilationState* state) override {
    EnsureCandidateSlots(state);
    for (size_t ci = 0; ci < state->pipeline.candidates.size(); ++ci) {
      ProgramCandidate& candidate = state->pipeline.candidates[ci];
      CompiledSubprogram& compiled = state->candidates[ci];
      // Lowering stays serial: the AddressMap threads stable simulated
      // addresses through the kernels in execution order.
      AddressMap addresses;
      for (SlicingResult& kernel : candidate.kernels) {
        ScopedSpan lower_span("compiler.lower");
        lower_span.Arg("kernel", kernel.schedule.graph.name());
        KernelSpec spec = LowerSchedule(kernel.schedule, &addresses);
        compiled.program.kernels.push_back(kernel.schedule);
        compiled.kernels.push_back(std::move(spec));
      }
    }
    return Status::Ok();
  }
};

class EstimatePass : public Pass {
 public:
  const char* name() const override { return "Estimate"; }

  Status Run(CompilationState* state) override {
    // Serial argmin with strict less-than: the first candidate wins ties,
    // independent of job count.
    for (CompiledSubprogram& compiled : state->candidates) {
      {
        ScopedSpan estimate_span("compiler.estimate", "simulate");
        compiled.estimate = state->cost->Estimate(compiled.kernels);
        estimate_span.Arg("time_us", compiled.estimate.time_us);
      }
      if (!state->have_best || compiled.estimate.time_us < state->best.estimate.time_us) {
        state->best = compiled;
        state->have_best = true;
      }
    }
    SF_CHECK(state->have_best);
    return Status::Ok();
  }

  // Phase boundary 2 (exit): the chosen program — per-kernel SMG build,
  // slicing and memory-plan legality, plus inter-kernel dependency order
  // against the source graph. A violation of the tuned result is a compiler
  // bug.
  Status VerifyAfter(CompilationState* state) override {
    DiagnosticReport report = VerifyCompiledProgram(state->best.program, *state->graph, state->rc);
    if (!report.ok()) {
      return report.ToStatus(StatusCode::kInternal);
    }
    for (const Diagnostic& d : report.diagnostics()) {
      SF_LOG(Warning) << d.ToString();
    }
    return Status::Ok();
  }
};

// Static race/alias analysis (SFV06xx) of the chosen program: every pair of
// blocks the schedule runs concurrently must have disjoint or write-free
// footprints on shared buffers. Races in the tuned result are compiler bugs,
// so findings fail the compile like a verifier violation would.
class AnalyzePass : public Pass {
 public:
  const char* name() const override { return "Analyze"; }

  Status Run(CompilationState* state) override {
    SF_CHECK(state->have_best);
    DiagnosticReport report = AnalyzeCompiledProgram(state->best.program, *state->graph);
    if (!report.ok()) {
      return report.ToStatus(StatusCode::kInternal);
    }
    for (const Diagnostic& d : report.diagnostics()) {
      SF_LOG(Warning) << d.ToString();
    }
    return Status::Ok();
  }
};

}  // namespace

std::vector<std::unique_ptr<Pass>> BuildCompilePassList(const CompileOptions& options) {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<BuildSmgPass>());
  passes.push_back(std::make_unique<SlicingPipelinePass>());
  passes.push_back(std::make_unique<EnumerateConfigsPass>());
  if (options.enable_auto_scheduling) {
    passes.push_back(std::make_unique<TunePass>());
  } else {
    passes.push_back(std::make_unique<ExpertConfigPass>());
  }
  passes.push_back(std::make_unique<PlanMemoryPass>());
  passes.push_back(std::make_unique<LowerPass>());
  passes.push_back(std::make_unique<EstimatePass>());
  if (options.analyze != AnalyzeMode::kOff || options.verify == VerifyMode::kFull) {
    passes.push_back(std::make_unique<AnalyzePass>());
  }
  return passes;
}

}  // namespace spacefusion
