// Pass-manager compile pipeline (paper Fig. 9 as a declarative pass list).
//
// The compile path — SMG build, resource-aware slicing/partitioning,
// search-space enumeration, tuning, memory planning, lowering, estimation —
// is expressed as typed passes over a CompilationState artifact store. The
// PassManager uniformly applies what each phase used to hand-roll: a trace
// span and run/latency metrics per pass, per-pass wall-clock timings (the
// substrate for CompileTimeBreakdown), phase-boundary verification hooks
// (VerifyMode maps to before/after-pass checks), and the
// SPACEFUSION_DUMP_AFTER_PASS IR-dump facility. Ablation toggles are
// pass-list edits: BuildCompilePassList swaps Tune for ExpertConfig when
// auto-scheduling is disabled.
#ifndef SPACEFUSION_SRC_PASS_PASS_H_
#define SPACEFUSION_SRC_PASS_PASS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/race_analyzer.h"
#include "src/graph/graph.h"
#include "src/schedule/memory_planner.h"
#include "src/schedule/pipeline.h"
#include "src/sim/cost_cache.h"
#include "src/sim/cost_model.h"
#include "src/smg/smg_builder.h"
#include "src/support/status.h"
#include "src/support/thread_annotations.h"
#include "src/tuning/tuner.h"
#include "src/verify/verifier.h"

namespace spacefusion {

struct CompileOptions {
  GpuArch arch;
  // Ablation toggles (paper Sec. 6.4):
  //  * enable_temporal_slicing=false               -> Base(SS) / Base+AS
  //  * enable_auto_scheduling=false (expert cfgs)  -> Base(SS) / Base+TS
  // BuildCompilePassList turns these into pass-list edits.
  bool enable_temporal_slicing = true;
  bool enable_auto_scheduling = true;
  // Static IR verification at phase boundaries (src/verify): input graphs
  // are checked at compile entry and the chosen program at compile exit;
  // kFull additionally checks every candidate program and enumerated
  // config. Defaults to SPACEFUSION_VERIFY from the environment, else phase.
  VerifyMode verify = VerifyModeFromEnv();
  // Static race/alias analysis (src/analysis, SFV06xx) of the chosen
  // program at compile exit. Always on under verify == kFull; kPhase runs
  // it on every compile. Analysis never changes the compiled program, so
  // this field is deliberately excluded from CompileOptionsDigest: cache
  // keys are identical with the analyzer on or off. Defaults to
  // SPACEFUSION_ANALYZE from the environment, else off.
  AnalyzeMode analyze = AnalyzeModeFromEnv();
  SearchOptions search;
  TunerOptions tuner;
  // Shape bucket this compile belongs to (the bucket ShapeKey::Label(),
  // "" for shape-agnostic compiles). Mixed into CompileOptionsDigest only
  // when non-empty — legacy digests are unchanged — and stamped onto
  // persistent cache entries so one bucket's programs can never serve
  // another bucket, even on a fingerprint collision.
  std::string shape_bucket;

  CompileOptions();  // defaults to A100
  explicit CompileOptions(GpuArch a) : arch(std::move(a)) {}
};

// Compile-time breakdown of one subprogram (Table 4's columns). The
// wall-clock columns are derived from the PassManager's pass timings and
// span totals (the accumulator sums the scheduling passes and the
// "search.enum_cfg" spans), so they stay consistent with what
// SPACEFUSION_TRACE captures.
struct CompileTimeBreakdown {
  double slicing_ms = 0.0;    // TS.getPriorDim + TS.slice + SS.getDims + SS.slice
  double enum_cfg_ms = 0.0;   // search-space enumeration
  double tuning_s = 0.0;      // emulated measurement time (dominates)
  double total_s() const { return tuning_s + (slicing_ms + enum_cfg_ms) * 1e-3; }
};

struct CompiledSubprogram {
  ScheduledProgram program;          // tuned kernels, in execution order
  std::vector<KernelSpec> kernels;   // lowered specs
  ExecutionReport estimate;          // simulator cost of one execution
  CompileTimeBreakdown compile_time;
  TuningStats tuning;
  int candidate_programs = 1;        // Sec. 5.3 alternatives explored
  // Engine request that produced this result for *this* caller. A program
  // served from the cache carries the id of the request that hit, not of
  // the request that originally compiled it.
  std::string request_id;
  // What this compile contributes to cross-bucket config transfer: one
  // record per tuned kernel (across all candidates). In-memory only — not
  // serialized into .sfpc blobs, so persisted programs stay byte-identical
  // to the pre-transfer format.
  std::vector<TunedKernelRecord> tuned_kernels;
};

// Distinct fusion patterns discovered across compilations (Table 6).
struct FusionPatternStats {
  int total = 0;
  int ci_only = 0;
  int mi_only = 0;
  int ci_and_mi = 0;
};

// Thread-safe Table 6 accounting: fused subgraphs with >= 2 All-to-One
// mappings, deduplicated by operator topology. Shared by every compile an
// engine serves, so Record may be called from concurrent requests.
class FusionPatternRecorder {
 public:
  void Record(const Graph& kernel_graph);
  FusionPatternStats stats() const;

 private:
  mutable Mutex mu_;
  FusionPatternStats stats_ SF_GUARDED_BY(mu_);
  std::map<std::uint64_t, bool> seen_patterns_ SF_GUARDED_BY(mu_);
};

// The artifact store passes read and write. Inputs (graph, options, cost
// model, caches) are non-owning pointers wired up by the engine; artifacts
// accumulate as the pass list runs.
struct CompilationState {
  // --- inputs -----------------------------------------------------------
  const Graph* graph = nullptr;
  const CompileOptions* options = nullptr;
  ResourceConfig rc;
  const CostModel* cost = nullptr;
  CostCache* cost_cache = nullptr;          // may be null (no memoization)
  FusionPatternRecorder* fusion = nullptr;  // may be null (no Table 6 stats)

  // --- artifacts --------------------------------------------------------
  // BuildSmg: weakly-connected components and their fused SMGs.
  std::vector<Graph> components;
  std::vector<SmgBuildResult> component_smgs;
  // SlicingPipeline: candidate programs (fused + Sec. 5.3 split).
  PipelineResult pipeline;
  // EnumerateConfigs: total enumerated configs across candidates.
  std::int64_t enumerated_configs = 0;
  // Tune/ExpertConfig + PlanMemory + Lower + Estimate: per-candidate
  // compiled results, then the argmin winner.
  std::vector<CompiledSubprogram> candidates;
  CompiledSubprogram best;
  bool have_best = false;
  // Tuning totals folded across candidates in deterministic kernel order.
  double total_tuning_s = 0.0;
  int configs_tried = 0;
  int configs_screened = 0;
  int configs_transfer_seeded = 0;
  // Per-kernel transfer records (signature + admitted configs best-first),
  // appended by TunePass in deterministic candidate/kernel order.
  std::vector<TunedKernelRecord> tuned_kernels;

  // Renders the artifacts present so far (for SPACEFUSION_DUMP_AFTER_PASS).
  std::string DumpArtifacts() const;
};

// One compile pass. `name()` must return a string literal (it is used in
// span/metric names). Verify hooks run only when options->verify != kOff;
// a pass that has no boundary invariant inherits the Ok default.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual Status Run(CompilationState* state) = 0;
  virtual Status VerifyBefore(CompilationState* state) {
    (void)state;
    return Status::Ok();
  }
  virtual Status VerifyAfter(CompilationState* state) {
    (void)state;
    return Status::Ok();
  }
};

struct PassTiming {
  std::string pass;
  double ms = 0.0;      // wall clock
  // Process CPU time (std::clock) spent while the pass ran. Greater than
  // wall means parallel work (the tuner's pool); approximate when other
  // requests compile concurrently in the same process.
  double cpu_ms = 0.0;
};

// True when `pass_name` matches the SPACEFUSION_DUMP_AFTER_PASS spec: "all"
// (or "*") matches every pass, otherwise a comma-separated list of pass
// names is matched case-sensitively. Empty spec matches nothing.
bool PassDumpRequested(const std::string& dump_spec, const char* pass_name);

struct PassManagerOptions {
  // Which passes to dump artifacts after. Defaults to the
  // SPACEFUSION_DUMP_AFTER_PASS environment variable (read per manager).
  std::string dump_after_pass;
  // Where dumps go; default writes to stderr.
  std::function<void(const std::string& pass_name, const std::string& text)> dump_sink;
  // Request id stamped onto flight-recorder events ("" = unattributed).
  std::string request_id;
  // Suffix appended to the pass.<name>.{runs,ms} metric names, normally a
  // LabeledMetricName label block like {request_id="req-000001"} so
  // concurrent compiles stay attributable. Empty (the default) keeps the
  // unlabeled process-wide series; per-request labeling is opt-in at the
  // engine (EngineOptions::label_metrics_by_request) to bound cardinality.
  std::string metric_label;

  PassManagerOptions();
};

// Runs a pass list over a CompilationState. One PhaseAccumulator spans the
// whole run, so span-derived totals (e.g. "search.enum_cfg") are available
// afterwards; each pass additionally gets a steady-clock timing, a
// "pass.<name>" trace span, and pass.<name>.{runs,ms} metrics.
class PassManager {
 public:
  explicit PassManager(std::vector<std::unique_ptr<Pass>> passes,
                       PassManagerOptions options = PassManagerOptions());

  Status Run(CompilationState* state);

  // Per-pass wall-clock timings of the last Run, in list order.
  const std::vector<PassTiming>& timings() const { return timings_; }
  // Timing of one pass by name (0 when the pass did not run).
  double PassMs(const std::string& pass_name) const;
  // Span-name totals accumulated during the last Run (PhaseAccumulator).
  double SpanTotalMs(const std::string& span_name) const;

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  PassManagerOptions options_;
  std::vector<PassTiming> timings_;
  std::map<std::string, double> span_totals_ms_;
};

// The Fig. 9 compile pipeline as a pass list:
//   BuildSmg, SlicingPipeline, EnumerateConfigs, Tune, PlanMemory, Lower,
//   Estimate
// with Tune replaced by ExpertConfig when auto-scheduling is disabled.
std::vector<std::unique_ptr<Pass>> BuildCompilePassList(const CompileOptions& options);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_PASS_PASS_H_
