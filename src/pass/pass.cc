#include "src/pass/pass.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

std::string FlightMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

CompileOptions::CompileOptions() : arch(AmpereA100()) {}

void FusionPatternRecorder::Record(const Graph& kernel_graph) {
  int a2o_ops = 0;
  bool has_ci = false;
  bool has_mi = false;
  for (const Op& op : kernel_graph.ops()) {
    if (op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce) {
      ++a2o_ops;
    }
    if (op.compute_intensive()) {
      has_ci = true;
    } else {
      has_mi = true;
    }
  }
  if (a2o_ops < 2) {
    return;  // Table 6 counts fused subgraphs with >= 2 All-to-Ones
  }
  std::uint64_t topo = kernel_graph.TopologyHash();
  MutexLock lock(mu_);
  if (seen_patterns_.count(topo) > 0) {
    return;
  }
  seen_patterns_.emplace(topo, true);
  ++stats_.total;
  if (has_ci && has_mi) {
    ++stats_.ci_and_mi;
  } else if (has_ci) {
    ++stats_.ci_only;
  } else {
    ++stats_.mi_only;
  }
}

FusionPatternStats FusionPatternRecorder::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::string CompilationState::DumpArtifacts() const {
  std::string out;
  if (graph != nullptr) {
    out += StrCat("graph: ", graph->name(), " (", graph->ops().size(), " ops, ",
                  graph->tensors().size(), " tensors)\n");
  }
  if (!components.empty()) {
    out += StrCat("components: ", components.size(), "\n");
  }
  for (size_t i = 0; i < component_smgs.size(); ++i) {
    out += StrCat("smg[", i, "]:\n", component_smgs[i].smg.ToString());
  }
  if (!pipeline.candidates.empty()) {
    out += StrCat("candidate programs: ", pipeline.candidates.size(), "\n");
    for (size_t ci = 0; ci < pipeline.candidates.size(); ++ci) {
      const ProgramCandidate& candidate = pipeline.candidates[ci];
      out += StrCat("candidate[", ci, "]: ", candidate.kernels.size(), " kernels, ",
                    candidate.partition_rounds, " partition rounds\n");
      for (const SlicingResult& kernel : candidate.kernels) {
        out += kernel.schedule.ToString();
        out += StrCat("  configs: ", kernel.configs.size(), "\n");
      }
    }
  }
  if (enumerated_configs > 0) {
    out += StrCat("enumerated configs: ", enumerated_configs, "\n");
  }
  if (have_best) {
    out += StrCat("best: ", best.kernels.size(), " kernels, est ", best.estimate.time_us,
                  " us, tuning ", best.tuning.simulated_tuning_seconds, " s\n");
    for (const SmgSchedule& kernel : best.program.kernels) {
      out += kernel.ToString();
    }
  }
  return out;
}

bool PassDumpRequested(const std::string& dump_spec, const char* pass_name) {
  if (dump_spec.empty()) {
    return false;
  }
  if (dump_spec == "all" || dump_spec == "*") {
    return true;
  }
  const std::string name(pass_name);
  size_t begin = 0;
  while (begin <= dump_spec.size()) {
    size_t end = dump_spec.find(',', begin);
    if (end == std::string::npos) {
      end = dump_spec.size();
    }
    if (dump_spec.compare(begin, end - begin, name) == 0) {
      return true;
    }
    begin = end + 1;
  }
  return false;
}

PassManagerOptions::PassManagerOptions() {
  const char* env = std::getenv("SPACEFUSION_DUMP_AFTER_PASS");
  if (env != nullptr) {
    dump_after_pass = env;
  }
  dump_sink = [](const std::string& pass_name, const std::string& text) {
    std::string block =
        StrCat("=== dump-after-pass: ", pass_name, " ===\n", text, "=== end ", pass_name, " ===\n");
    std::fwrite(block.data(), 1, block.size(), stderr);
  };
}

PassManager::PassManager(std::vector<std::unique_ptr<Pass>> passes, PassManagerOptions options)
    : passes_(std::move(passes)), options_(std::move(options)) {}

Status PassManager::Run(CompilationState* state) {
  // One accumulator spans the run: every span completed by any pass (or by
  // pool workers via ScopedPhaseHandoff) lands in the per-name totals that
  // CompileTimeBreakdown is derived from.
  PhaseAccumulator phases;
  timings_.clear();
  span_totals_ms_.clear();
  const bool verify_on =
      state->options != nullptr && state->options->verify != VerifyMode::kOff;
  Status status = Status::Ok();
  for (const std::unique_ptr<Pass>& pass : passes_) {
    const std::string span_name = StrCat("pass.", pass->name());
    auto start = std::chrono::steady_clock::now();
    std::clock_t cpu_start = std::clock();
    {
      ScopedSpan span(span_name.c_str(), "pass");
      if (verify_on) {
        status = pass->VerifyBefore(state);
      }
      if (status.ok()) {
        status = pass->Run(state);
      }
      if (status.ok() && verify_on) {
        status = pass->VerifyAfter(state);
      }
    }
    double cpu_ms = 1e3 * static_cast<double>(std::clock() - cpu_start) / CLOCKS_PER_SEC;
    double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
                    .count();
    timings_.push_back({pass->name(), ms, cpu_ms});
    MetricsRegistry::Global()
        .GetCounter(StrCat("pass.", pass->name(), ".runs", options_.metric_label))
        .Increment(1);
    MetricsRegistry::Global()
        .GetHistogram(StrCat("pass.", pass->name(), ".ms", options_.metric_label))
        .Observe(ms);
    if (!status.ok()) {
      FlightRecorder::Global().Record(
          options_.request_id, "pass",
          StrCat(pass->name(), " failed after ", FlightMs(ms), " ms: ", status.message()));
      break;
    }
    FlightRecorder::Global().Record(options_.request_id, "pass",
                                    StrCat(pass->name(), " done in ", FlightMs(ms), " ms"));
    if (PassDumpRequested(options_.dump_after_pass, pass->name()) && options_.dump_sink) {
      options_.dump_sink(pass->name(), state->DumpArtifacts());
    }
  }
  for (const PassTiming& timing : timings_) {
    span_totals_ms_[StrCat("pass.", timing.pass)] = 0.0;  // ensure pass rows exist
  }
  for (const auto& [name, total_ms] : phases.AllTotalsMs()) {
    span_totals_ms_[name] = total_ms;
  }
  return status;
}

double PassManager::PassMs(const std::string& pass_name) const {
  for (const PassTiming& timing : timings_) {
    if (timing.pass == pass_name) {
      return timing.ms;
    }
  }
  return 0.0;
}

double PassManager::SpanTotalMs(const std::string& span_name) const {
  auto it = span_totals_ms_.find(span_name);
  return it == span_totals_ms_.end() ? 0.0 : it->second;
}

}  // namespace spacefusion
