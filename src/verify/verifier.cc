#include "src/verify/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/slicing/dim_analysis.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

constexpr const char* kGraphPhase = "graph";
constexpr const char* kSmgPhase = "smg";
constexpr const char* kSlicePhase = "slice";
constexpr const char* kSchedulePhase = "schedule";
constexpr const char* kMemoryPhase = "memory";

bool IsBoundaryKind(TensorKind kind) {
  return kind == TensorKind::kInput || kind == TensorKind::kWeight ||
         kind == TensorKind::kConstant;
}

std::string MappingSubject(const Smg& smg, const Mapping& m) {
  auto space_name = [&smg](SpaceId s) -> std::string {
    if (s < 0 || s >= static_cast<SpaceId>(smg.spaces().size())) {
      return StrCat("space#", s);
    }
    return smg.space(s).name;
  };
  return StrCat("mapping#", m.id, "(", space_name(m.src), " -", MappingKindName(m.kind), "-> ",
                space_name(m.dst), ")");
}

bool HasDimSorted(const std::vector<DimId>& dims, DimId d) {
  return std::binary_search(dims.begin(), dims.end(), d);
}

// True when every dim of `sub` also appears in `super` (both sorted).
bool DimsSubset(const std::vector<DimId>& sub, const std::vector<DimId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

const char* VerifyModeName(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kPhase:
      return "phase";
    case VerifyMode::kFull:
      return "full";
  }
  return "?";
}

StatusOr<VerifyMode> ParseVerifyMode(const std::string& text) {
  if (text == "off") {
    return VerifyMode::kOff;
  }
  if (text == "phase") {
    return VerifyMode::kPhase;
  }
  if (text == "full") {
    return VerifyMode::kFull;
  }
  return InvalidArgument(
      StrCat("unknown verify mode \"", text, "\" (expected off, phase, or full)"));
}

VerifyMode VerifyModeFromEnv(VerifyMode fallback) {
  const char* env = std::getenv("SPACEFUSION_VERIFY");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  StatusOr<VerifyMode> parsed = ParseVerifyMode(env);
  if (!parsed.ok()) {
    SF_LOG(Warning) << "SPACEFUSION_VERIFY: " << parsed.status().message() << "; using "
                    << VerifyModeName(fallback);
    return fallback;
  }
  return parsed.value();
}

// --- GraphVerifier (SFV01xx) ---------------------------------------------

void VerifyGraph(const Graph& graph, DiagnosticReport* report) {
  SF_TRACE_SPAN("verify.graph", "verify");
  SF_COUNTER_ADD("verify.graph_checks", 1);
  const TensorId num_tensors = static_cast<TensorId>(graph.tensors().size());

  // Producers recomputed from the op list: Graph::producer() is a derived
  // table that silently keeps only the last writer.
  std::vector<int> producers(static_cast<size_t>(num_tensors), 0);

  for (const Op& op : graph.ops()) {
    size_t want_arity =
        (op.kind == OpKind::kUnary || op.kind == OpKind::kReduce) ? 1u : 2u;
    if (op.inputs.size() != want_arity) {
      report->AddError("SFV0107", kGraphPhase, op.name,
                       StrCat(OpKindName(op.kind), " expects ", want_arity, " input(s), has ",
                              op.inputs.size()));
    }

    bool inputs_ok = op.inputs.size() == want_arity;
    std::vector<Shape> in_shapes;
    for (TensorId in : op.inputs) {
      if (in < 0 || in >= num_tensors) {
        report->AddError("SFV0101", kGraphPhase, op.name,
                         StrCat("references invalid tensor id ", in));
        inputs_ok = false;
        continue;
      }
      const TensorInfo& t = graph.tensor(in);
      if (!IsBoundaryKind(t.kind)) {
        OpId prod = graph.producer(in);
        if (prod >= op.id) {
          report->AddError("SFV0102", kGraphPhase, op.name,
                           StrCat("consumes ", t.name, " before it is produced (op order is ",
                                  "cyclic or non-topological)"));
        }
      }
      in_shapes.push_back(t.shape);
    }

    if (op.output < 0 || op.output >= num_tensors) {
      report->AddError("SFV0101", kGraphPhase, op.name,
                       StrCat("produces invalid tensor id ", op.output));
      continue;
    }
    ++producers[static_cast<size_t>(op.output)];
    const TensorInfo& out = graph.tensor(op.output);

    if (inputs_ok) {
      StatusOr<Shape> expect = TryInferOpShape(op.kind, op.attrs, in_shapes);
      if (!expect.ok()) {
        report->AddError("SFV0103", kGraphPhase, op.name, expect.status().message());
      } else if (expect.value() != out.shape) {
        report->AddError("SFV0103", kGraphPhase, op.name,
                         StrCat("output shape ", out.shape.ToString(), " != inferred ",
                                expect.value().ToString()));
      }
      // Dtype consistency: the output follows the first non-constant
      // operand (FP32 scalar constants never promote the chain).
      for (TensorId in : op.inputs) {
        const TensorInfo& t = graph.tensor(in);
        if (t.kind == TensorKind::kConstant) {
          continue;
        }
        if (t.dtype != out.dtype) {
          report->AddWarning("SFV0108", kGraphPhase, op.name,
                             StrCat("output dtype differs from operand ", t.name,
                                    " dtype (implicit conversion)"));
        }
        break;
      }
    }
  }

  std::set<std::string> names;
  for (const TensorInfo& t : graph.tensors()) {
    bool needs_producer = !IsBoundaryKind(t.kind);
    int n = producers[static_cast<size_t>(t.id)];
    if (needs_producer && n == 0) {
      report->AddError("SFV0104", kGraphPhase, t.name,
                       StrCat(TensorKindName(t.kind), " tensor has no producing op"));
    }
    if (!needs_producer && n > 0) {
      report->AddError("SFV0105", kGraphPhase, t.name,
                       StrCat("graph-boundary ", TensorKindName(t.kind),
                              " tensor is produced by an op"));
    }
    if (n > 1) {
      report->AddError("SFV0106", kGraphPhase, t.name,
                       StrCat("produced by ", n, " ops (must be exactly one)"));
    }
    for (std::int64_t d : t.shape.dims()) {
      if (d < 1) {
        report->AddError("SFV0110", kGraphPhase, t.name,
                         StrCat("non-positive dimension in shape ", t.shape.ToString()));
        break;
      }
    }
    if (!names.insert(t.name).second) {
      report->AddWarning("SFV0109", kGraphPhase, t.name,
                         "duplicate tensor name (diagnostics may be ambiguous)");
    }
  }
}

// --- SmgVerifier (SFV02xx) -----------------------------------------------

void VerifySmg(const Smg& smg, DiagnosticReport* report) {
  SF_TRACE_SPAN("verify.smg", "verify");
  SF_COUNTER_ADD("verify.smg_checks", 1);
  const int num_dims = smg.num_dims();
  const SpaceId num_spaces = static_cast<SpaceId>(smg.spaces().size());

  for (const FusedDim& d : smg.dims()) {
    if (d.extent < 1) {
      report->AddError("SFV0206", kSmgPhase, d.name,
                       StrCat("fused dim has non-positive extent ", d.extent));
    }
  }

  for (const Space& s : smg.spaces()) {
    DimId prev = kNoDim;
    for (DimId d : s.dims) {
      if (d < 0 || d >= num_dims) {
        report->AddError("SFV0204", kSmgPhase, s.name,
                         StrCat("space extends along invalid dim id ", d));
      } else if (prev != kNoDim && d <= prev) {
        report->AddError("SFV0204", kSmgPhase, s.name,
                         "space dim list is not sorted strictly ascending");
      }
      prev = d;
    }
  }

  for (const Mapping& m : smg.mappings()) {
    std::string subject = MappingSubject(smg, m);
    if (m.src < 0 || m.src >= num_spaces || m.dst < 0 || m.dst >= num_spaces) {
      report->AddError("SFV0202", kSmgPhase, subject, "mapping references an invalid space id");
      continue;
    }
    const Space& src = smg.space(m.src);
    const Space& dst = smg.space(m.dst);
    bool directional = m.kind != MappingKind::kOneToOne;
    if (directional && m.dim == kNoDim) {
      report->AddError("SFV0201", kSmgPhase, subject,
                       StrCat(MappingKindName(m.kind), " mapping carries no direction dim"));
      continue;
    }
    if (!directional && m.dim != kNoDim) {
      report->AddError("SFV0201", kSmgPhase, subject,
                       "One-to-One mapping carries a direction dim");
    }
    if (m.dim != kNoDim && (m.dim < 0 || m.dim >= num_dims)) {
      report->AddError("SFV0202", kSmgPhase, subject,
                       StrCat("mapping direction references invalid dim id ", m.dim));
      continue;
    }
    switch (m.kind) {
      case MappingKind::kOneToOne:
        if (src.dims != dst.dims) {
          report->AddError("SFV0201", kSmgPhase, subject,
                           "One-to-One mapping between spaces of different dimensionality");
        }
        break;
      case MappingKind::kOneToAll:
        // The source is reused along the direction dim: the destination must
        // extend along it, the source must not.
        if (HasDimSorted(src.dims, m.dim) || !HasDimSorted(dst.dims, m.dim)) {
          report->AddError("SFV0203", kSmgPhase, subject,
                           StrCat("One-to-All direction ", smg.dim(m.dim).name,
                                  " must extend the destination but not the source"));
        } else if (!DimsSubset(src.dims, dst.dims)) {
          report->AddError("SFV0203", kSmgPhase, subject,
                           "One-to-All source extends along dims its destination lacks");
        }
        break;
      case MappingKind::kAllToOne:
        // A whole extent collapses along the direction dim: the source must
        // extend along it, the destination must not.
        if (!HasDimSorted(src.dims, m.dim) || HasDimSorted(dst.dims, m.dim)) {
          report->AddError("SFV0203", kSmgPhase, subject,
                           StrCat("All-to-One direction ", smg.dim(m.dim).name,
                                  " must extend the source but not the destination"));
        } else if (!DimsSubset(dst.dims, src.dims)) {
          report->AddError("SFV0203", kSmgPhase, subject,
                           "All-to-One destination extends along dims its source lacks");
        }
        break;
    }
  }

  // Space reachability: every iteration space and every non-boundary data
  // space must be reachable from the graph boundary (inputs / weights /
  // constants) through directed mappings — an unreachable space computes
  // nothing observable and signals a broken SMG construction.
  std::vector<bool> reached(static_cast<size_t>(num_spaces), false);
  std::vector<SpaceId> frontier;
  for (const Space& s : smg.spaces()) {
    if (s.IsGraphBoundaryInput()) {
      reached[static_cast<size_t>(s.id)] = true;
      frontier.push_back(s.id);
    }
  }
  while (!frontier.empty()) {
    SpaceId cur = frontier.back();
    frontier.pop_back();
    for (MappingId mid : smg.outgoing(cur)) {
      SpaceId next = smg.mapping(mid).dst;
      if (next >= 0 && next < num_spaces && !reached[static_cast<size_t>(next)]) {
        reached[static_cast<size_t>(next)] = true;
        frontier.push_back(next);
      }
    }
  }
  for (const Space& s : smg.spaces()) {
    if (!s.IsGraphBoundaryInput() && !reached[static_cast<size_t>(s.id)]) {
      report->AddError("SFV0205", kSmgPhase, s.name,
                       "space is unreachable from every graph-boundary input space");
    }
  }
}

void VerifySmgBuild(const Graph& graph, const SmgBuildResult& built, DiagnosticReport* report) {
  VerifySmg(built.smg, report);
  const Smg& smg = built.smg;
  const size_t num_tensors = graph.tensors().size();

  if (built.tensor_space.size() != num_tensors || built.op_space.size() != graph.ops().size() ||
      built.tensor_axis_dims.size() != num_tensors) {
    report->AddError("SFV0207", kSmgPhase, smg.name(),
                     "SMG build tables are not parallel to the operator graph");
    return;
  }

  for (const TensorInfo& t : graph.tensors()) {
    SpaceId sid = built.tensor_space[static_cast<size_t>(t.id)];
    if (sid < 0 || sid >= static_cast<SpaceId>(smg.spaces().size()) ||
        smg.space(sid).kind != SpaceKind::kData ||
        smg.space(sid).tensor != t.id) {
      report->AddError("SFV0207", kSmgPhase, t.name,
                       "tensor does not map to its own data space");
      continue;
    }
    const std::vector<DimId>& axes = built.tensor_axis_dims[static_cast<size_t>(t.id)];
    if (static_cast<int>(axes.size()) != t.shape.rank()) {
      report->AddError("SFV0207", kSmgPhase, t.name,
                       "tensor axis-dim table does not match the tensor rank");
      continue;
    }
    for (int axis = 0; axis < t.shape.rank(); ++axis) {
      std::int64_t extent = t.shape.dim(axis);
      DimId d = axes[static_cast<size_t>(axis)];
      if (extent > 1) {
        if (d == kNoDim || d < 0 || d >= smg.num_dims()) {
          report->AddError("SFV0206", kSmgPhase, t.name,
                           StrCat("axis ", axis, " (extent ", extent,
                                  ") is not aligned to any fused dim"));
        } else if (smg.dim(d).extent != extent) {
          report->AddError("SFV0206", kSmgPhase, t.name,
                           StrCat("axis ", axis, " extent ", extent, " != fused dim ",
                                  smg.dim(d).name, " extent ", smg.dim(d).extent));
        }
      } else if (d != kNoDim) {
        report->AddError("SFV0206", kSmgPhase, t.name,
                         StrCat("extent-1 axis ", axis, " is aligned to fused dim ", d));
      }
    }
  }

  for (const Op& op : graph.ops()) {
    SpaceId sid = built.op_space[static_cast<size_t>(op.id)];
    if (sid < 0 || sid >= static_cast<SpaceId>(smg.spaces().size()) ||
        smg.space(sid).kind != SpaceKind::kIteration || smg.space(sid).op != op.id) {
      report->AddError("SFV0207", kSmgPhase, op.name,
                       "op does not map to its own iteration space");
    }
  }
}

// --- SliceVerifier (SFV03xx) ---------------------------------------------

void VerifySlicing(const SmgSchedule& schedule, DiagnosticReport* report) {
  SF_TRACE_SPAN("verify.slicing", "verify");
  SF_COUNTER_ADD("verify.slice_checks", 1);
  const Smg& smg = schedule.built.smg;
  const int num_dims = smg.num_dims();

  if (schedule.spatial.empty()) {
    report->AddError("SFV0303", kSlicePhase, smg.name(),
                     "no fused dim is spatially sliced: the schedule has no parallelism "
                     "(every SMG block decomposition needs at least one grid dim)");
  }

  std::set<DimId> sliced;
  for (const DimSlice& s : schedule.spatial) {
    if (s.dim < 0 || s.dim >= num_dims) {
      report->AddError("SFV0302", kSlicePhase, StrCat("dim#", s.dim),
                       "spatial slicer references an invalid fused dim");
      continue;
    }
    const std::string& dim_name = smg.dim(s.dim).name;
    if (!sliced.insert(s.dim).second) {
      report->AddError("SFV0301", kSlicePhase, dim_name,
                       "fused dim is spatially sliced more than once");
    }
    if (s.block < 1) {
      report->AddError("SFV0304", kSlicePhase, dim_name,
                       StrCat("non-positive spatial block size ", s.block));
    }
    DimAnalysis analysis = AnalyzeDim(smg, s.dim);
    if (!analysis.SpatialSliceable()) {
      report->AddError("SFV0305", kSlicePhase, dim_name,
                       StrCat("spatially sliced dim is classified ", DimClassName(analysis.cls),
                              ": slicing it cuts a directional mapping and creates "
                              "inter-block flow dependencies"));
    }
  }

  if (schedule.has_temporal) {
    if (schedule.temporal.dim < 0 || schedule.temporal.dim >= num_dims) {
      report->AddError("SFV0302", kSlicePhase, StrCat("dim#", schedule.temporal.dim),
                       "temporal slicer references an invalid fused dim");
      return;
    }
    const std::string& dim_name = smg.dim(schedule.temporal.dim).name;
    if (sliced.count(schedule.temporal.dim) > 0) {
      report->AddError("SFV0301", kSlicePhase, dim_name,
                       "fused dim is covered by both the spatial and the temporal slicer");
    }
    if (schedule.temporal.block < 1) {
      report->AddError("SFV0304", kSlicePhase, dim_name,
                       StrCat("non-positive temporal step ", schedule.temporal.block));
    }
    if (schedule.plan.dim != schedule.temporal.dim) {
      report->AddError("SFV0306", kSlicePhase, dim_name,
                       "temporal aggregation plan was derived for a different dim");
    }
    // When the dim is actually serialized (more than one intra-block),
    // every All-to-One collapsing along it must have an aggregation rule —
    // a missing rule silently drops partial reduction results.
    if (schedule.NumIntraBlocks() > 1) {
      for (MappingId mid : smg.AllToOnesAlongDim(schedule.temporal.dim)) {
        OpId owner = smg.mapping(mid).op;
        bool covered = false;
        for (const ReductionAggregation& agg : schedule.plan.aggregations) {
          covered = covered || agg.op == owner;
        }
        if (!covered) {
          report->AddError("SFV0306", kSlicePhase, dim_name,
                           StrCat("All-to-One of op ",
                                  owner >= 0 && owner < static_cast<OpId>(
                                                            schedule.graph.ops().size())
                                      ? schedule.graph.op(owner).name
                                      : StrCat("#", owner),
                                  " along the temporal dim has no aggregation rule"));
        }
      }
    }
  }
}

// --- ScheduleVerifier (SFV04xx) ------------------------------------------

void VerifySchedule(const ScheduledProgram& program, const Graph& source,
                    DiagnosticReport* report) {
  SF_TRACE_SPAN("verify.schedule", "verify");
  SF_COUNTER_ADD("verify.schedule_checks", 1);

  // Kernel graphs are rebuilt subsets of the source graph; tensor *names*
  // survive every split (components, partition cuts), so dependency
  // preservation is checked by name: a kernel may only consume what the
  // source graph provides or an *earlier* kernel has produced.
  std::set<std::string> available;
  for (const TensorInfo& t : source.tensors()) {
    if (IsBoundaryKind(t.kind)) {
      available.insert(t.name);
    }
  }

  for (size_t k = 0; k < program.kernels.size(); ++k) {
    const SmgSchedule& kernel = program.kernels[k];
    const Graph& g = kernel.graph;
    for (const TensorInfo& t : g.tensors()) {
      if (IsBoundaryKind(t.kind) && available.count(t.name) == 0) {
        report->AddError("SFV0401", kSchedulePhase, t.name,
                         StrCat("kernel #", k, " (", g.name(), ") consumes a tensor no earlier "
                                "SMG block produced: block order violates dependencies"));
      }
    }
    for (const TensorInfo& t : g.tensors()) {
      if (t.kind == TensorKind::kOutput) {
        available.insert(t.name);
      }
    }

    // Intra-block serial order: aggregation rules execute in the kernel's
    // serial op order, so a dependent All-to-One chain (softmax: max before
    // sum) must keep its rules sorted by owning op.
    OpId prev = -1;
    for (const ReductionAggregation& agg : kernel.plan.aggregations) {
      if (agg.op < 0 || agg.op >= static_cast<OpId>(g.ops().size())) {
        report->AddError("SFV0403", kSchedulePhase, StrCat("op#", agg.op),
                         StrCat("kernel #", k, " aggregation rule references an op outside "
                                "the kernel graph"));
      } else if (agg.op <= prev) {
        report->AddError("SFV0403", kSchedulePhase, g.op(agg.op).name,
                         StrCat("kernel #", k, " intra-block aggregation order violates the "
                                "All-to-One dependency chain"));
      }
      prev = std::max(prev, agg.op);
    }
  }

  for (const TensorInfo& t : source.tensors()) {
    if (t.kind == TensorKind::kOutput && available.count(t.name) == 0) {
      report->AddError("SFV0402", kSchedulePhase, t.name,
                       "subprogram output is produced by no SMG block");
    }
  }
}

// --- MemoryPlanVerifier (SFV05xx) ----------------------------------------

void VerifyMemoryPlan(const SmgSchedule& schedule, const ResourceConfig& rc,
                      DiagnosticReport* report) {
  SF_TRACE_SPAN("verify.memory", "verify");
  SF_COUNTER_ADD("verify.memory_checks", 1);
  const Graph& graph = schedule.graph;

  if (schedule.memory.tensor_level.size() != graph.tensors().size()) {
    report->AddError("SFV0503", kMemoryPhase, graph.name(),
                     StrCat("memory plan covers ", schedule.memory.tensor_level.size(),
                            " tensors, graph has ", graph.tensors().size()));
    return;
  }

  // Independent recomputation: rerun the liveness pass on a copy and demand
  // identical placements and footprints. A recorded footprint below the
  // recomputed peak means live ranges of distinct tiles overlap inside the
  // claimed arena; any divergence means the plan is stale for the block
  // sizes actually scheduled.
  SmgSchedule probe = schedule;
  PlanMemory(&probe, rc);
  for (const TensorInfo& t : graph.tensors()) {
    MemLevel recorded = schedule.memory.tensor_level[static_cast<size_t>(t.id)];
    MemLevel recomputed = probe.memory.tensor_level[static_cast<size_t>(t.id)];
    if (recorded != recomputed) {
      report->AddError("SFV0502", kMemoryPhase, t.name,
                       StrCat("planned level ", MemLevelName(recorded),
                              " != recomputed level ", MemLevelName(recomputed)));
    }
  }
  if (schedule.memory.smem_bytes != probe.memory.smem_bytes) {
    report->AddError("SFV0502", kMemoryPhase, graph.name(),
                     StrCat("recorded shared-memory footprint ", schedule.memory.smem_bytes,
                            "B != live-range requirement ", probe.memory.smem_bytes,
                            "B (stale or overlapping allocation)"));
  }
  if (schedule.memory.reg_bytes != probe.memory.reg_bytes) {
    report->AddError("SFV0502", kMemoryPhase, graph.name(),
                     StrCat("recorded register footprint ", schedule.memory.reg_bytes,
                            "B != live-range requirement ", probe.memory.reg_bytes, "B"));
  }

  // Budgets are checked against the recomputed (trustworthy) footprints.
  if (probe.memory.smem_bytes > rc.smem_per_block_max) {
    report->AddError("SFV0501", kMemoryPhase, graph.name(),
                     StrCat("per-block shared memory ", probe.memory.smem_bytes,
                            "B exceeds the ", rc.smem_per_block_max, "B budget"));
  }
  if (probe.memory.reg_bytes > rc.reg_per_block_max) {
    report->AddError("SFV0501", kMemoryPhase, graph.name(),
                     StrCat("per-block register bytes ", probe.memory.reg_bytes, "B exceed the ",
                            rc.reg_per_block_max, "B budget"));
  }
}

// --- Phase-boundary driver -----------------------------------------------

DiagnosticReport VerifyCompiledProgram(const ScheduledProgram& program, const Graph& source,
                                       const ResourceConfig& rc) {
  SF_TRACE_SPAN("verify.program", "verify");
  SF_COUNTER_ADD("verify.programs_checked", 1);
  DiagnosticReport report;
  for (const SmgSchedule& kernel : program.kernels) {
    report.SetContext(kernel.graph.name());
    VerifyGraph(kernel.graph, &report);
    VerifySmgBuild(kernel.graph, kernel.built, &report);
    VerifySlicing(kernel, &report);
    VerifyMemoryPlan(kernel, rc, &report);
  }
  report.SetContext(source.name());
  VerifySchedule(program, source, &report);
  if (!report.empty()) {
    SF_COUNTER_ADD("verify.diagnostics", static_cast<std::int64_t>(report.diagnostics().size()));
  }
  if (!report.ok()) {
    SF_COUNTER_ADD("verify.errors", report.error_count());
  }
  return report;
}

}  // namespace spacefusion
