// Structured diagnostics for the phase-boundary IR verifiers.
//
// Every violated invariant is reported as a Diagnostic with a stable error
// code ("SFV" + 4 digits: the first two digits name the owning checker, the
// last two the check), a severity, the compiler phase that found it, and the
// offending entity (op / tensor / space / mapping / dim name). A
// DiagnosticReport accumulates the diagnostics of one verification run and
// renders them for humans (one line per finding) or machines (JSON).
//
// Code ranges (the full catalog lives in DESIGN.md "Static verification"):
//   SFV01xx  GraphVerifier       operator-graph structure
//   SFV02xx  SmgVerifier         space-mapping-graph legality
//   SFV03xx  SliceVerifier       slicing decisions / dim coverage
//   SFV04xx  ScheduleVerifier    inter-block dependency preservation
//   SFV05xx  MemoryPlanVerifier  footprints and resource budgets
//   SFV06xx  RaceAnalyzer        cross-block race / alias freedom
//   SFV07xx  serve protocol      NDJSON request validation (src/serve)
#ifndef SPACEFUSION_SRC_VERIFY_DIAGNOSTICS_H_
#define SPACEFUSION_SRC_VERIFY_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/support/status.h"

namespace spacefusion {

enum class DiagSeverity { kWarning, kError };

const char* DiagSeverityName(DiagSeverity severity);

struct Diagnostic {
  std::string code;      // "SFV0101"
  DiagSeverity severity = DiagSeverity::kError;
  std::string phase;     // "graph" | "smg" | "slice" | "schedule" | "memory"
  std::string context;   // owning graph / kernel name
  std::string subject;   // offending op / tensor / space / mapping / dim
  std::string message;   // human-readable description of the violation

  // "SFV0101 [error] graph(mha): op softmax_0: ..." — one line.
  std::string ToString() const;
  std::string ToJson() const;
};

// Accumulates the diagnostics of one verification run.
class DiagnosticReport {
 public:
  // Context (graph / kernel name) stamped onto subsequently added
  // diagnostics; set it before invoking a checker.
  void SetContext(std::string context) { context_ = std::move(context); }
  const std::string& context() const { return context_; }

  Diagnostic& AddError(const char* code, const char* phase, std::string subject,
                       std::string message);
  Diagnostic& AddWarning(const char* code, const char* phase, std::string subject,
                         std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int error_count() const;
  int warning_count() const;
  bool ok() const { return error_count() == 0; }
  bool empty() const { return diagnostics_.empty(); }

  // True if a diagnostic with exactly this code was recorded.
  bool HasCode(const std::string& code) const;

  // Moves every diagnostic of `other` into this report.
  void Merge(DiagnosticReport&& other);

  // One line per diagnostic; "" when the report is empty.
  std::string ToString() const;
  // {"diagnostics":[...],"errors":N,"warnings":N}
  std::string ToJson() const;

  // Collapses the report into a Status carrying every rendered diagnostic
  // (Ok when there are no errors; warnings alone do not fail).
  Status ToStatus(StatusCode code = StatusCode::kInvalidArgument) const;

 private:
  Diagnostic& Add(DiagSeverity severity, const char* code, const char* phase,
                  std::string subject, std::string message);

  std::string context_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_VERIFY_DIAGNOSTICS_H_
