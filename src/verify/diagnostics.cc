#include "src/verify/diagnostics.h"

#include <cstdio>

#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << code << " [" << DiagSeverityName(severity) << "] " << phase;
  if (!context.empty()) {
    out << "(" << context << ")";
  }
  out << ": ";
  if (!subject.empty()) {
    out << subject << ": ";
  }
  out << message;
  return out.str();
}

std::string Diagnostic::ToJson() const {
  return StrCat("{\"code\":\"", code, "\",\"severity\":\"", DiagSeverityName(severity),
                "\",\"phase\":\"", EscapeJson(phase), "\",\"context\":\"", EscapeJson(context),
                "\",\"subject\":\"", EscapeJson(subject), "\",\"message\":\"",
                EscapeJson(message), "\"}");
}

Diagnostic& DiagnosticReport::Add(DiagSeverity severity, const char* code, const char* phase,
                                  std::string subject, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.phase = phase;
  d.context = context_;
  d.subject = std::move(subject);
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

Diagnostic& DiagnosticReport::AddError(const char* code, const char* phase, std::string subject,
                                       std::string message) {
  return Add(DiagSeverity::kError, code, phase, std::move(subject), std::move(message));
}

Diagnostic& DiagnosticReport::AddWarning(const char* code, const char* phase, std::string subject,
                                         std::string message) {
  return Add(DiagSeverity::kWarning, code, phase, std::move(subject), std::move(message));
}

int DiagnosticReport::error_count() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_) {
    n += d.severity == DiagSeverity::kError ? 1 : 0;
  }
  return n;
}

int DiagnosticReport::warning_count() const {
  return static_cast<int>(diagnostics_.size()) - error_count();
}

bool DiagnosticReport::HasCode(const std::string& code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

void DiagnosticReport::Merge(DiagnosticReport&& other) {
  for (Diagnostic& d : other.diagnostics_) {
    diagnostics_.push_back(std::move(d));
  }
  other.diagnostics_.clear();
}

std::string DiagnosticReport::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << diagnostics_[i].ToString();
  }
  return out.str();
}

std::string DiagnosticReport::ToJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += diagnostics_[i].ToJson();
  }
  out += StrCat("],\"errors\":", error_count(), ",\"warnings\":", warning_count(), "}");
  return out;
}

Status DiagnosticReport::ToStatus(StatusCode code) const {
  if (ok()) {
    return Status::Ok();
  }
  return Status(code, StrCat("verification failed with ", error_count(), " error(s):\n",
                             ToString()));
}

}  // namespace spacefusion
