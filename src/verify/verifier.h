// Phase-boundary IR verifiers: static legality checking for the three IR
// levels of the pipeline — operator Graph, Space-Mapping Graph, and the
// sliced Schedule with its memory plan.
//
// The paper states the invariants these checkers enforce but the pipeline
// previously only discovered violations dynamically (wrong numerics in the
// differential tests, or SF_CHECK aborts deep in lowering). Each checker is
// a pure function appending structured diagnostics (SFV#### codes, see
// diagnostics.h) to a DiagnosticReport:
//
//   GraphVerifier       acyclicity / use-before-def, shape and dtype
//                       consistency, dangling producers, arity;
//   SmgVerifier         mapping-kind vs. dimension-arity legality, space
//                       reachability from the graph boundary, FusedDim
//                       consistency with the tensor axes;
//   SliceVerifier       spatial/temporal slicers cover fused dims at most
//                       once (and at least one spatially), sliced dims are
//                       legally sliceable per the Table-3 classification,
//                       block sizes are positive, temporal aggregation
//                       plans cover every sliced All-to-One;
//   ScheduleVerifier    kernel order preserves all inter-operator
//                       dependencies across SMG blocks, intra-block serial
//                       order respects All-to-One reduction chains;
//   MemoryPlanVerifier  recorded footprints match an independent liveness
//                       recomputation (no overlapping/stale allocations)
//                       and stay within the ResourceConfig budgets.
//
// The compiler runs them at phase boundaries according to
// SPACEFUSION_VERIFY={off,phase,full} (see VerifyMode below).
#ifndef SPACEFUSION_SRC_VERIFY_VERIFIER_H_
#define SPACEFUSION_SRC_VERIFY_VERIFIER_H_

#include <string>

#include "src/graph/graph.h"
#include "src/schedule/memory_planner.h"
#include "src/schedule/schedule_ir.h"
#include "src/smg/smg.h"
#include "src/smg/smg_builder.h"
#include "src/support/status.h"
#include "src/verify/diagnostics.h"

namespace spacefusion {

// How much static verification the compiler performs.
//   kOff    no checks;
//   kPhase  inputs verified at compile entry, the chosen program (SMG,
//           slicing, memory plan, block order) verified at compile exit;
//   kFull   kPhase plus every candidate program and every enumerated
//           schedule configuration.
enum class VerifyMode { kOff, kPhase, kFull };

const char* VerifyModeName(VerifyMode mode);

// Parses "off" / "phase" / "full" (case-sensitive).
StatusOr<VerifyMode> ParseVerifyMode(const std::string& text);

// Reads SPACEFUSION_VERIFY from the environment; unset or empty yields
// `fallback` (the compiler defaults to kPhase), unparsable values warn once
// and yield `fallback`.
VerifyMode VerifyModeFromEnv(VerifyMode fallback = VerifyMode::kPhase);

// --- Checkers ------------------------------------------------------------
// Each appends to `report` and never aborts; callers inspect report->ok().

// SFV01xx: operator-graph structure.
void VerifyGraph(const Graph& graph, DiagnosticReport* report);

// SFV02xx: SMG structural legality (standalone Smg, no operator graph).
void VerifySmg(const Smg& smg, DiagnosticReport* report);

// SFV02xx: consistency of an SMG build result against its source graph
// (index tables, FusedDim extents vs. tensor axes). Runs VerifySmg first.
void VerifySmgBuild(const Graph& graph, const SmgBuildResult& built, DiagnosticReport* report);

// SFV03xx: slicing decisions of one schedule.
void VerifySlicing(const SmgSchedule& schedule, DiagnosticReport* report);

// SFV04xx: the kernel sequence computes `source` with dependencies intact.
void VerifySchedule(const ScheduledProgram& program, const Graph& source,
                    DiagnosticReport* report);

// SFV05xx: memory plan of one schedule under the resource budgets.
void VerifyMemoryPlan(const SmgSchedule& schedule, const ResourceConfig& rc,
                      DiagnosticReport* report);

// Phase-boundary convenience: verifies every kernel of a compiled program
// (SMG build, slicing, memory plan) plus the inter-kernel dependency order
// against the source subprogram. This is the compile-exit check of kPhase
// mode and the per-candidate check of kFull mode.
DiagnosticReport VerifyCompiledProgram(const ScheduledProgram& program, const Graph& source,
                                       const ResourceConfig& rc);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_VERIFY_VERIFIER_H_
