// Reference execution of operator graphs with the unfused tensor kernels —
// numerical ground truth for fused schedules.
#ifndef SPACEFUSION_SRC_EXEC_REFERENCE_EXECUTOR_H_
#define SPACEFUSION_SRC_EXEC_REFERENCE_EXECUTOR_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace spacefusion {

// An execution environment: one Tensor slot per graph tensor id.
using TensorEnv = std::vector<Tensor>;

// Creates an environment with deterministic random inputs/weights and
// splatted constants; intermediates/outputs are left undefined.
TensorEnv MakeGraphInputs(const Graph& graph, std::uint64_t seed);

// Evaluates one op given its input tensors.
Tensor EvaluateOp(const Op& op, const std::vector<Tensor>& inputs);

// Executes every op in order, filling intermediates and outputs.
void RunReference(const Graph& graph, TensorEnv* env);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_EXEC_REFERENCE_EXECUTOR_H_
