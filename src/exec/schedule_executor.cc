#include "src/exec/schedule_executor.h"

#include <limits>
#include <map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"
#include "src/tensor/tensor_ops.h"

namespace spacefusion {

namespace {

// Copies the [start, start+width) slice of `axis` out of `t`.
Tensor SliceAxis(const Tensor& t, int axis, std::int64_t start, std::int64_t width) {
  const Shape& shape = t.shape();
  std::vector<std::int64_t> out_dims = shape.dims();
  out_dims[static_cast<size_t>(axis)] = width;
  Tensor out(Shape(out_dims), t.dtype());

  std::int64_t inner = 1;
  for (int i = axis + 1; i < shape.rank(); ++i) {
    inner *= shape.dim(i);
  }
  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) {
    outer *= shape.dim(i);
  }
  std::int64_t axis_extent = shape.dim(axis);
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t a = 0; a < width; ++a) {
      const float* src = t.data() + (o * axis_extent + start + a) * inner;
      float* dst = out.data() + (o * width + a) * inner;
      for (std::int64_t i = 0; i < inner; ++i) {
        dst[i] = src[i];
      }
    }
  }
  return out;
}

// Writes `slice` into `full` at [start, ...) of `axis`.
void WriteSlice(Tensor* full, const Tensor& slice, int axis, std::int64_t start) {
  const Shape& shape = full->shape();
  std::int64_t width = slice.shape().dim(axis);
  std::int64_t inner = 1;
  for (int i = axis + 1; i < shape.rank(); ++i) {
    inner *= shape.dim(i);
  }
  std::int64_t outer = 1;
  for (int i = 0; i < axis; ++i) {
    outer *= shape.dim(i);
  }
  std::int64_t axis_extent = shape.dim(axis);
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t a = 0; a < width; ++a) {
      float* dst = full->data() + (o * axis_extent + start + a) * inner;
      const float* src = slice.data() + (o * width + a) * inner;
      for (std::int64_t i = 0; i < inner; ++i) {
        dst[i] = src[i];
      }
    }
  }
}

// Elementwise update multiplier for one factor given the old/new published
// values of its source reduction.
Tensor FactorMultiplier(const UpdateFactor& factor, const Tensor& old_v, const Tensor& new_v) {
  Tensor out(old_v.shape(), DType::kF32);
  for (std::int64_t i = 0; i < out.volume(); ++i) {
    out.at(i) = factor.Multiplier(old_v.at(i), new_v.at(i));
  }
  return out;
}

}  // namespace

Status RunSchedule(const SmgSchedule& schedule, TensorEnv* env) {
  const Graph& graph = schedule.graph;
  ScopedSpan span("exec.run_schedule", "exec");
  span.Arg("kernel", graph.name());
  SF_COUNTER_ADD("exec.kernel_launches", 1);

  if (!schedule.has_temporal || schedule.NumIntraBlocks() <= 1) {
    // No temporal loop: the fused kernel evaluates the dataflow once.
    RunReference(graph, env);
    return Status::Ok();
  }
  span.Arg("temporal_steps", schedule.NumIntraBlocks());
  SF_COUNTER_ADD("exec.temporal_steps", schedule.NumIntraBlocks());

  const SmgBuildResult& built = schedule.built;
  const DimId tdim = schedule.temporal.dim;
  const std::int64_t extent = built.smg.dim(tdim).extent;
  const std::int64_t step = schedule.temporal.block;

  // Aggregation lookup.
  std::map<OpId, const ReductionAggregation*> agg_of;
  for (const ReductionAggregation& agg : schedule.plan.aggregations) {
    agg_of[agg.op] = &agg;
  }

  // Running state: raw accumulator plus the value published to consumers.
  std::map<OpId, Tensor> acc;
  std::map<OpId, Tensor> published;
  for (const ReductionAggregation& agg : schedule.plan.aggregations) {
    const TensorInfo& out = graph.tensor(graph.op(agg.op).output);
    float init = agg.combiner == ReduceOpKind::kMax
                     ? -std::numeric_limits<float>::infinity()
                     : 0.0f;
    acc[agg.op] = Tensor::Full(out.shape, init, DType::kF32);
    published[agg.op] = Tensor::Zeros(out.shape, DType::kF32);
  }

  // Full buffers for outputs that extend along the temporal dim (pure
  // streaming outputs; the plan derivation guarantees they are not
  // downstream of running reductions).
  std::map<TensorId, Tensor> streamed_outputs;
  for (const TensorInfo& t : graph.tensors()) {
    if (t.kind == TensorKind::kOutput && built.AxisOfDim(t.id, tdim) >= 0) {
      streamed_outputs[t.id] = Tensor::Zeros(t.shape, t.dtype);
    }
  }

  std::vector<Tensor> cur(graph.tensors().size());
  std::int64_t processed = 0;

  for (std::int64_t s0 = 0; s0 < extent; s0 += step) {
    const std::int64_t width = std::min(step, extent - s0);
    processed += width;

    // Old published values, captured before this intra-block aggregates.
    std::map<OpId, Tensor> published_old = published;

    for (const Op& op : graph.ops()) {
      // Gather inputs: boundary tensors come from env (sliced along the
      // temporal axis when they extend along it); computed tensors with a
      // temporal axis are already stored as the current slice.
      std::vector<Tensor> inputs;
      inputs.reserve(op.inputs.size());
      for (TensorId in : op.inputs) {
        const Tensor& computed = cur[static_cast<size_t>(in)];
        if (computed.defined()) {
          inputs.push_back(computed);
          continue;
        }
        const Tensor& boundary = (*env)[static_cast<size_t>(in)];
        if (!boundary.defined()) {
          return Internal(StrCat("undefined tensor ", graph.tensor(in).name));
        }
        int axis = built.AxisOfDim(in, tdim);
        inputs.push_back(axis >= 0 ? SliceAxis(boundary, axis, s0, width) : boundary);
      }

      auto agg_it = agg_of.find(op.id);
      if (agg_it == agg_of.end()) {
        cur[static_cast<size_t>(op.output)] = EvaluateOp(op, inputs);
        auto so = streamed_outputs.find(op.output);
        if (so != streamed_outputs.end()) {
          int axis = built.AxisOfDim(op.output, tdim);
          WriteSlice(&so->second, cur[static_cast<size_t>(op.output)], axis, s0);
        }
        continue;
      }

      // Running reduction: local contribution over this intra-block's slice.
      const ReductionAggregation& agg = *agg_it->second;
      Tensor local;
      if (op.kind == OpKind::kMatMul) {
        local = MatMul(inputs[0], inputs[1], op.attrs.transpose_a, op.attrs.transpose_b);
      } else if (agg.finalize_divide_by_extent) {
        local = Reduce(ReduceKind::kSum, inputs[0]);  // raw partial sum
      } else {
        local = Reduce(op.attrs.reduce, inputs[0]);
      }

      // Update-then-Aggregate: rescale the old running value so it is
      // consistent with the freshest dependee reductions, then combine.
      Tensor updated_old = acc[op.id];
      for (const UpdateFactor& factor : agg.update) {
        const Tensor& old_v = published_old.at(factor.source);
        const Tensor& new_v = published.at(factor.source);
        updated_old = Binary(BinaryKind::kMul, updated_old, FactorMultiplier(factor, old_v, new_v));
      }
      BinaryKind combine =
          agg.combiner == ReduceOpKind::kMax ? BinaryKind::kMax : BinaryKind::kAdd;
      acc[op.id] = Binary(combine, updated_old, local);

      published[op.id] = agg.finalize_divide_by_extent
                             ? Scale(acc[op.id], 1.0f / static_cast<float>(processed))
                             : acc[op.id];
      cur[static_cast<size_t>(op.output)] = published[op.id];
    }
  }

  // Publish results: streamed outputs from their full buffers; everything
  // else from the final intra-block's values.
  for (const Op& op : graph.ops()) {
    TensorId out = op.output;
    auto so = streamed_outputs.find(out);
    if (so != streamed_outputs.end()) {
      (*env)[static_cast<size_t>(out)] = so->second;
    } else {
      (*env)[static_cast<size_t>(out)] = cur[static_cast<size_t>(out)];
    }
  }
  return Status::Ok();
}

Status RunScheduledProgram(const ScheduledProgram& program, const Graph& original,
                           const TensorEnv& original_inputs, TensorEnv* final_outputs) {
  ScopedSpan span("exec.run_program", "exec");
  span.Arg("graph", original.name())
      .Arg("kernels", static_cast<std::int64_t>(program.kernels.size()));
  std::map<std::string, Tensor> by_name;
  for (const TensorInfo& t : original.tensors()) {
    if (t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight ||
        t.kind == TensorKind::kConstant) {
      by_name[t.name] = original_inputs[static_cast<size_t>(t.id)];
    }
  }

  for (const SmgSchedule& kernel : program.kernels) {
    const Graph& graph = kernel.graph;
    TensorEnv env(graph.tensors().size());
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kOutput) {
        continue;
      }
      auto it = by_name.find(t.name);
      if (it != by_name.end()) {
        env[static_cast<size_t>(t.id)] = it->second;
      } else if (t.kind == TensorKind::kConstant) {
        env[static_cast<size_t>(t.id)] = Tensor::Full(t.shape, t.constant_value, t.dtype);
      } else {
        return Internal(StrCat("kernel ", graph.name(), " misses input ", t.name));
      }
    }
    SF_RETURN_IF_ERROR(RunSchedule(kernel, &env));
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kOutput) {
        by_name[t.name] = env[static_cast<size_t>(t.id)];
      }
    }
  }

  final_outputs->assign(original.tensors().size(), Tensor());
  for (const TensorInfo& t : original.tensors()) {
    if (t.kind == TensorKind::kOutput) {
      auto it = by_name.find(t.name);
      if (it == by_name.end()) {
        return Internal(StrCat("program did not produce output ", t.name));
      }
      (*final_outputs)[static_cast<size_t>(t.id)] = it->second;
    }
  }
  return Status::Ok();
}

}  // namespace spacefusion
