// Numerical interpreter for fused SpaceFusion schedules.
//
// Executes the temporal intra-block loop exactly as the generated kernel
// would (paper Fig. 7): per intra-block, operators compute on slices of the
// temporal dim; running reductions aggregate with Simple Aggregate or
// Update-then-Aggregate (applying the generated update functions to the old
// running values before combining); downstream operators always consume the
// freshest running values. After the final intra-block the outputs are the
// exact fused results — this is how the repository *proves* that UTA (e.g.
// online softmax in MHA) is numerically equivalent to the reference.
//
// Spatial slicing is not materialized here: spatially sliced dims carry no
// non-input directional mappings by construction (Sec. 4.2), so per-block
// results are bit-identical to computing all blocks at once. The interpreter
// therefore executes the whole spatial extent and slices only the temporal
// dim, which exercises every aggregation/update path.
#ifndef SPACEFUSION_SRC_EXEC_SCHEDULE_EXECUTOR_H_
#define SPACEFUSION_SRC_EXEC_SCHEDULE_EXECUTOR_H_

#include "src/exec/reference_executor.h"
#include "src/schedule/schedule_ir.h"
#include "src/support/status.h"

namespace spacefusion {

// Executes one fused kernel's schedule over `env` (inputs must be defined;
// outputs/intermediates are written).
Status RunSchedule(const SmgSchedule& schedule, TensorEnv* env);

// Executes a partitioned program: kernels in sequence, cut tensors handed
// from one kernel's outputs to the next kernel's inputs by name.
Status RunScheduledProgram(const ScheduledProgram& program, const Graph& original,
                           const TensorEnv& original_inputs, TensorEnv* final_outputs);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_EXEC_SCHEDULE_EXECUTOR_H_
