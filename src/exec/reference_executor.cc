#include "src/exec/reference_executor.h"

#include "src/support/logging.h"
#include "src/tensor/tensor_ops.h"

namespace spacefusion {

TensorEnv MakeGraphInputs(const Graph& graph, std::uint64_t seed) {
  TensorEnv env(graph.tensors().size());
  for (const TensorInfo& t : graph.tensors()) {
    switch (t.kind) {
      case TensorKind::kInput:
      case TensorKind::kWeight:
        env[static_cast<size_t>(t.id)] =
            Tensor::Random(t.shape, seed + static_cast<std::uint64_t>(t.id) * 7919, t.dtype);
        break;
      case TensorKind::kConstant:
        env[static_cast<size_t>(t.id)] = Tensor::Full(t.shape, t.constant_value, t.dtype);
        break;
      case TensorKind::kIntermediate:
      case TensorKind::kOutput:
        break;
    }
  }
  return env;
}

Tensor EvaluateOp(const Op& op, const std::vector<Tensor>& inputs) {
  switch (op.kind) {
    case OpKind::kMatMul:
      SF_CHECK_EQ(inputs.size(), 2u);
      return MatMul(inputs[0], inputs[1], op.attrs.transpose_a, op.attrs.transpose_b);
    case OpKind::kUnary:
      SF_CHECK_EQ(inputs.size(), 1u);
      return Unary(op.attrs.unary, inputs[0]);
    case OpKind::kBinary:
      SF_CHECK_EQ(inputs.size(), 2u);
      return Binary(op.attrs.binary, inputs[0], inputs[1]);
    case OpKind::kReduce:
      SF_CHECK_EQ(inputs.size(), 1u);
      return Reduce(op.attrs.reduce, inputs[0]);
  }
  SF_CHECK(false) << "unreachable";
  return Tensor();
}

void RunReference(const Graph& graph, TensorEnv* env) {
  for (const Op& op : graph.ops()) {
    std::vector<Tensor> inputs;
    inputs.reserve(op.inputs.size());
    for (TensorId in : op.inputs) {
      const Tensor& t = (*env)[static_cast<size_t>(in)];
      SF_CHECK(t.defined()) << "tensor " << graph.tensor(in).name << " undefined";
      inputs.push_back(t);
    }
    (*env)[static_cast<size_t>(op.output)] = EvaluateOp(op, inputs);
  }
}

}  // namespace spacefusion
