#include "src/exec/jit_executor.h"

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"

namespace spacefusion {

const char* ExecBackendName(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kInterpret:
      return "interpret";
    case ExecBackend::kJit:
      return "jit";
  }
  return "?";
}

ExecBackend ExecBackendFromEnv() {
  const char* env = std::getenv("SPACEFUSION_EXEC");
  if (env != nullptr && std::string(env) == "jit") {
    return ExecBackend::kJit;
  }
  return ExecBackend::kInterpret;
}

JitExecutor::JitExecutor(JitExecutorOptions options) : options_(std::move(options)) {
  if (options_.cache.dir.empty()) {
    options_.cache.dir = KernelCacheDirFromEnv();
  }
  owned_cache_ = std::make_unique<JitKernelCache>(options_.cache);
  cache_ = owned_cache_.get();
}

JitExecutor::JitExecutor(JitExecutorOptions options, JitKernelCache* shared_cache)
    : options_(std::move(options)), cache_(shared_cache) {
  SF_CHECK(cache_ != nullptr);
}

Status JitExecutor::TryRunJit(const SmgSchedule& schedule, TensorEnv* env) {
  SF_ASSIGN_OR_RETURN(CppKernel kernel, EmitCppKernel(schedule, options_.codegen));
  SF_ASSIGN_OR_RETURN(JitKernelCache::Kernel loaded, cache_->GetOrBuild(kernel));

  const Graph& graph = schedule.graph;
  std::vector<const float*> in_ptrs;
  in_ptrs.reserve(kernel.input_ids.size());
  for (TensorId t : kernel.input_ids) {
    const Tensor& tensor = (*env)[static_cast<size_t>(t)];
    if (!tensor.defined()) {
      return Internal("jit: undefined input tensor " + graph.tensor(t).name);
    }
    if (tensor.shape() != graph.tensor(t).shape) {
      return Internal("jit: input " + graph.tensor(t).name + " has shape " +
                      tensor.shape().ToString() + ", kernel was specialized for " +
                      graph.tensor(t).shape.ToString());
    }
    in_ptrs.push_back(tensor.data());
  }
  std::vector<Tensor> outputs;
  std::vector<float*> out_ptrs;
  outputs.reserve(kernel.output_ids.size());
  out_ptrs.reserve(kernel.output_ids.size());
  for (TensorId t : kernel.output_ids) {
    const TensorInfo& info = graph.tensor(t);
    outputs.push_back(Tensor::Zeros(info.shape, info.dtype));
    out_ptrs.push_back(outputs.back().data());
  }
  std::vector<float> scratch(static_cast<size_t>(loaded.scratch_floats), 0.0f);

  const int rc = loaded.fn(in_ptrs.data(), out_ptrs.data(), scratch.data());
  if (rc != 0) {
    return Internal("jit: kernel " + kernel.symbol + " returned " + std::to_string(rc));
  }
  for (size_t i = 0; i < kernel.output_ids.size(); ++i) {
    (*env)[static_cast<size_t>(kernel.output_ids[i])] = outputs[i];
  }
  return Status::Ok();
}

Status JitExecutor::RunKernel(const SmgSchedule& schedule, TensorEnv* env) {
  ScopedSpan span("exec.jit.run_kernel", "exec");
  span.Arg("kernel", schedule.graph.name());
  Status jit = TryRunJit(schedule, env);
  if (jit.ok()) {
    SF_COUNTER_ADD("exec.jit.kernel_launches", 1);
    MutexLock lock(mu_);
    ++stats_.jit_runs;
    return jit;
  }
  if (!options_.fallback_to_interpret) {
    return jit;
  }
  SF_LOG(Warning) << "jit: falling back to interpreter for " << schedule.graph.name() << ": "
                  << jit.message();
  SF_COUNTER_ADD("exec.jit.fallbacks", 1);
  {
    MutexLock lock(mu_);
    ++stats_.fallbacks;
  }
  return RunSchedule(schedule, env);
}

Status JitExecutor::RunProgram(const ScheduledProgram& program, const Graph& original,
                               const TensorEnv& original_inputs, TensorEnv* final_outputs) {
  ScopedSpan span("exec.jit.run_program", "exec");
  span.Arg("graph", original.name())
      .Arg("kernels", static_cast<std::int64_t>(program.kernels.size()));
  // Mirrors RunScheduledProgram: boundary tensors are handed between
  // kernels by name.
  std::map<std::string, Tensor> by_name;
  for (const TensorInfo& t : original.tensors()) {
    if (t.kind == TensorKind::kInput || t.kind == TensorKind::kWeight ||
        t.kind == TensorKind::kConstant) {
      by_name[t.name] = original_inputs[static_cast<size_t>(t.id)];
    }
  }

  for (const SmgSchedule& kernel : program.kernels) {
    const Graph& graph = kernel.graph;
    TensorEnv env(graph.tensors().size());
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kIntermediate || t.kind == TensorKind::kOutput) {
        continue;
      }
      auto it = by_name.find(t.name);
      if (it != by_name.end()) {
        env[static_cast<size_t>(t.id)] = it->second;
      } else if (t.kind == TensorKind::kConstant) {
        env[static_cast<size_t>(t.id)] = Tensor::Full(t.shape, t.constant_value, t.dtype);
      } else {
        return Internal("kernel " + graph.name() + " misses input " + t.name);
      }
    }
    SF_RETURN_IF_ERROR(RunKernel(kernel, &env));
    for (const TensorInfo& t : graph.tensors()) {
      if (t.kind == TensorKind::kOutput) {
        by_name[t.name] = env[static_cast<size_t>(t.id)];
      }
    }
  }

  final_outputs->assign(original.tensors().size(), Tensor());
  for (const TensorInfo& t : original.tensors()) {
    if (t.kind == TensorKind::kOutput) {
      auto it = by_name.find(t.name);
      if (it == by_name.end()) {
        return Internal("program did not produce output " + t.name);
      }
      (*final_outputs)[static_cast<size_t>(t.id)] = it->second;
    }
  }
  return Status::Ok();
}

JitExecutor::Stats JitExecutor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Status RunScheduledProgramWithBackend(ExecBackend backend, const ScheduledProgram& program,
                                      const Graph& original, const TensorEnv& original_inputs,
                                      TensorEnv* final_outputs) {
  if (backend == ExecBackend::kInterpret) {
    return RunScheduledProgram(program, original, original_inputs, final_outputs);
  }
  // One process-wide executor so repeated calls share the in-memory handle
  // map on top of the persistent on-disk cache. Never destroyed: dlopened
  // code may still be referenced at exit.
  static JitExecutor* executor = new JitExecutor();
  return executor->RunProgram(program, original, original_inputs, final_outputs);
}

}  // namespace spacefusion
