// JIT execution of fused schedules: native code instead of interpretation.
//
// The JitExecutor emits specialized C++ for each kernel (cpp_codegen),
// compiles it through the persistent JIT kernel cache (jit_cache), and runs
// the resulting shared object. Every jit failure — emission, toolchain,
// dlopen, corrupt cache entry — falls back to the schedule interpreter
// (fallback ladder jit -> interpret), so SPACEFUSION_EXEC=jit can never
// produce fewer answers than SPACEFUSION_EXEC=interpret, only faster ones.
//
// Numerics: the emitted code replays the interpreter's exact per-element
// operation order and is compiled with -ffp-contract=off, so outputs are
// bit-identical to the interpreter on reassociation-free op streams (see
// DESIGN.md "Native codegen & JIT kernel cache" for the tolerance policy).
#ifndef SPACEFUSION_SRC_EXEC_JIT_EXECUTOR_H_
#define SPACEFUSION_SRC_EXEC_JIT_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "src/codegen/cpp_codegen.h"
#include "src/codegen/jit_cache.h"
#include "src/exec/schedule_executor.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

// Which executor runs a compiled schedule.
enum class ExecBackend { kInterpret, kJit };

const char* ExecBackendName(ExecBackend backend);

// SPACEFUSION_EXEC={interpret,jit}; anything else (or unset) interprets.
ExecBackend ExecBackendFromEnv();

struct JitExecutorOptions {
  CppCodegenOptions codegen;
  // Kernel cache configuration. An empty dir resolves through
  // KernelCacheDirFromEnv() (SPACEFUSION_KERNEL_CACHE_DIR, then
  // "<SPACEFUSION_CACHE_DIR>/kernels", then a per-process temp dir).
  JitCacheOptions cache;
  // Fall back to the interpreter when the jit path fails. Disable only in
  // tests that assert on jit errors.
  bool fallback_to_interpret = true;
};

class JitExecutor {
 public:
  struct Stats {
    std::int64_t jit_runs = 0;   // kernels executed natively
    std::int64_t fallbacks = 0;  // kernels that fell back to the interpreter
  };

  explicit JitExecutor(JitExecutorOptions options = JitExecutorOptions());
  // Runs against an externally owned kernel cache (e.g. the engine's, so
  // serving and execution share one persistent cache). `shared_cache` must
  // outlive the executor.
  JitExecutor(JitExecutorOptions options, JitKernelCache* shared_cache);

  // Executes one fused kernel's schedule over `env`, natively when
  // possible. Mirrors RunSchedule's contract.
  Status RunKernel(const SmgSchedule& schedule, TensorEnv* env);

  // Executes a partitioned program: kernels in sequence, cut tensors handed
  // between kernels by name. Mirrors RunScheduledProgram's contract.
  Status RunProgram(const ScheduledProgram& program, const Graph& original,
                    const TensorEnv& original_inputs, TensorEnv* final_outputs);

  JitKernelCache& cache() { return *cache_; }
  Stats stats() const;

 private:
  Status TryRunJit(const SmgSchedule& schedule, TensorEnv* env);

  JitExecutorOptions options_;
  std::unique_ptr<JitKernelCache> owned_cache_;
  JitKernelCache* cache_ = nullptr;

  mutable Mutex mu_;
  Stats stats_ SF_GUARDED_BY(mu_);
};

// Convenience dispatch: kInterpret calls RunScheduledProgram; kJit runs a
// process-wide JitExecutor with default (environment-driven) options.
Status RunScheduledProgramWithBackend(ExecBackend backend, const ScheduledProgram& program,
                                      const Graph& original, const TensorEnv& original_inputs,
                                      TensorEnv* final_outputs);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_EXEC_JIT_EXECUTOR_H_
