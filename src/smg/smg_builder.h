// Builds a fused SMG from an operator graph (paper Sec. 4.1, Fig. 3–5).
//
// Dimension alignment: every (tensor, axis) pair with extent > 1 is a node in
// a union-find structure; operator semantics join axes that iterate together
// (matmul M/N/K correspondence, element-wise axis identity, broadcast
// right-alignment). Each resulting equivalence class becomes one global
// dimension of the fused computational space — this is the "connecting SMGs
// with intermediate data space dimension alignment" step of Fig. 4.
#ifndef SPACEFUSION_SRC_SMG_SMG_BUILDER_H_
#define SPACEFUSION_SRC_SMG_SMG_BUILDER_H_

#include "src/graph/graph.h"
#include "src/smg/smg.h"
#include "src/support/status.h"

namespace spacefusion {

// Result of SMG construction: the graph plus per-tensor / per-op space ids so
// later stages (slicing, lowering, execution) can navigate both directions.
struct SmgBuildResult {
  Smg smg;
  std::vector<SpaceId> tensor_space;  // indexed by TensorId
  std::vector<SpaceId> op_space;      // indexed by OpId (iteration spaces)
  // Per tensor, per axis: the global dim that axis aligns to (kNoDim for
  // extent-1 placeholder axes). Used by the schedule executor to slice
  // tensors along the temporal dim.
  std::vector<std::vector<DimId>> tensor_axis_dims;

  // The axis of `tensor` aligned to global dim `dim`, or -1.
  int AxisOfDim(TensorId tensor, DimId dim) const;
};

// Builds the fused SMG for an entire subprogram. Fails with kUnsupported if
// an operator's axes cannot be aligned consistently.
StatusOr<SmgBuildResult> BuildSmg(const Graph& graph);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SMG_SMG_BUILDER_H_
