#include "src/smg/smg_builder.h"

#include <map>
#include <set>

#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

constexpr int kMaxRank = 8;

// Union-find over (tensor, axis) keys.
class AxisUnion {
 public:
  explicit AxisUnion(int num_tensors) : parent_(static_cast<size_t>(num_tensors) * kMaxRank) {
    for (size_t i = 0; i < parent_.size(); ++i) {
      parent_[i] = static_cast<int>(i);
    }
  }

  static int Key(TensorId t, int axis) { return t * kMaxRank + axis; }

  int Find(int key) {
    while (parent_[static_cast<size_t>(key)] != key) {
      parent_[static_cast<size_t>(key)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(key)])];
      key = parent_[static_cast<size_t>(key)];
    }
    return key;
  }

  void Join(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra != rb) {
      parent_[static_cast<size_t>(rb)] = ra;
    }
  }

 private:
  std::vector<int> parent_;
};

struct MatMulAxes {
  int m_a;      // M axis in operand A
  int k_a;      // K axis in operand A
  int k_b;      // K axis in operand B
  int n_b;      // N axis in operand B
};

MatMulAxes ResolveMatMulAxes(const Op& op, const Shape& a, const Shape& b) {
  MatMulAxes axes;
  axes.m_a = op.attrs.transpose_a ? a.rank() - 1 : a.rank() - 2;
  axes.k_a = op.attrs.transpose_a ? a.rank() - 2 : a.rank() - 1;
  axes.k_b = op.attrs.transpose_b ? b.rank() - 1 : b.rank() - 2;
  axes.n_b = op.attrs.transpose_b ? b.rank() - 2 : b.rank() - 1;
  return axes;
}

}  // namespace

int SmgBuildResult::AxisOfDim(TensorId tensor, DimId dim) const {
  const std::vector<DimId>& axes = tensor_axis_dims[static_cast<size_t>(tensor)];
  for (size_t i = 0; i < axes.size(); ++i) {
    if (axes[i] == dim) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

StatusOr<SmgBuildResult> BuildSmg(const Graph& graph) {
  const int num_tensors = static_cast<int>(graph.tensors().size());
  for (const TensorInfo& t : graph.tensors()) {
    if (t.shape.rank() > kMaxRank) {
      return Unsupported(StrCat("tensor ", t.name, " rank exceeds ", kMaxRank));
    }
  }

  // Malformed graphs (hand-built or fuzzed) must fail with a reportable
  // status, not index out of bounds in the alignment phase below.
  for (const Op& op : graph.ops()) {
    size_t want = (op.kind == OpKind::kUnary || op.kind == OpKind::kReduce) ? 1u : 2u;
    if (op.inputs.size() != want) {
      return InvalidArgument(StrCat("[SFV0107] op ", op.name, " expects ", want,
                                    " input(s), has ", op.inputs.size()));
    }
    for (TensorId in : op.inputs) {
      if (in < 0 || in >= static_cast<TensorId>(num_tensors)) {
        return InvalidArgument(StrCat("[SFV0101] op ", op.name, " references invalid tensor ",
                                      in));
      }
    }
    if (op.output < 0 || op.output >= static_cast<TensorId>(num_tensors)) {
      return InvalidArgument(StrCat("[SFV0101] op ", op.name, " produces invalid tensor ",
                                    op.output));
    }
    if (op.kind == OpKind::kMatMul &&
        (graph.tensor(op.inputs[0]).shape.rank() < 2 ||
         graph.tensor(op.inputs[1]).shape.rank() < 2)) {
      return InvalidArgument(StrCat("[SFV0103] matmul ", op.name,
                                    " needs rank >= 2 operands"));
    }
    if (op.kind == OpKind::kReduce && graph.tensor(op.inputs[0]).shape.rank() < 1) {
      return InvalidArgument(StrCat("[SFV0103] reduce ", op.name,
                                    " needs a rank >= 1 operand"));
    }
  }

  AxisUnion dsu(num_tensors);
  auto join_axes = [&](TensorId ta, int ax_a, TensorId tb, int ax_b) {
    dsu.Join(AxisUnion::Key(ta, ax_a), AxisUnion::Key(tb, ax_b));
  };

  // Phase 1: dimension alignment. Join axes that iterate together.
  for (const Op& op : graph.ops()) {
    const Shape& out = graph.tensor(op.output).shape;
    switch (op.kind) {
      case OpKind::kMatMul: {
        const Shape& a = graph.tensor(op.inputs[0]).shape;
        const Shape& b = graph.tensor(op.inputs[1]).shape;
        MatMulAxes axes = ResolveMatMulAxes(op, a, b);
        join_axes(op.output, out.rank() - 2, op.inputs[0], axes.m_a);
        join_axes(op.output, out.rank() - 1, op.inputs[1], axes.n_b);
        join_axes(op.inputs[0], axes.k_a, op.inputs[1], axes.k_b);
        // Batch dims: right-aligned against the leading out dims.
        for (int i = 0; i < out.rank() - 2; ++i) {
          int ax_in_a = i - ((out.rank() - 2) - (a.rank() - 2));
          if (ax_in_a >= 0 && a.dim(ax_in_a) == out.dim(i) && out.dim(i) > 1) {
            join_axes(op.output, i, op.inputs[0], ax_in_a);
          }
          int ax_in_b = i - ((out.rank() - 2) - (b.rank() - 2));
          if (ax_in_b >= 0 && b.dim(ax_in_b) == out.dim(i) && out.dim(i) > 1) {
            join_axes(op.output, i, op.inputs[1], ax_in_b);
          }
        }
        break;
      }
      case OpKind::kUnary: {
        const Shape& in = graph.tensor(op.inputs[0]).shape;
        for (int i = 0; i < out.rank(); ++i) {
          if (out.dim(i) > 1) {
            join_axes(op.output, i, op.inputs[0], i + (in.rank() - out.rank()));
          }
        }
        break;
      }
      case OpKind::kBinary: {
        for (TensorId in_id : op.inputs) {
          const Shape& in = graph.tensor(in_id).shape;
          for (int i = 0; i < out.rank(); ++i) {
            int src_axis = i - (out.rank() - in.rank());
            if (src_axis >= 0 && in.dim(src_axis) == out.dim(i) && out.dim(i) > 1) {
              join_axes(op.output, i, in_id, src_axis);
            }
          }
        }
        break;
      }
      case OpKind::kReduce: {
        const Shape& in = graph.tensor(op.inputs[0]).shape;
        for (int i = 0; i < out.rank() - 1; ++i) {
          if (out.dim(i) > 1) {
            join_axes(op.output, i, op.inputs[0], i);
          }
        }
        (void)in;
        break;
      }
    }
  }

  // Phase 2: allocate one global dim per axis equivalence class in use.
  SmgBuildResult result;
  result.smg = Smg(graph.name());
  Smg& smg = result.smg;

  std::map<int, DimId> root_to_dim;
  auto dim_of_axis = [&](TensorId t, int axis) -> StatusOr<DimId> {
    std::int64_t extent = graph.tensor(t).shape.dim(axis);
    SF_CHECK_GT(extent, 1);
    int root = dsu.Find(AxisUnion::Key(t, axis));
    auto it = root_to_dim.find(root);
    if (it != root_to_dim.end()) {
      if (smg.dim(it->second).extent != extent) {
        // A user graph whose op semantics force two different extents onto
        // one aligned dim (e.g. mismatched elementwise chain built by hand)
        // is an input error, not a compiler bug.
        return InvalidArgument(
            StrCat("[SFV0206] dimension alignment extent mismatch in ", graph.name(), ": ",
                   smg.dim(it->second).extent, " vs ", extent, " for tensor ",
                   graph.tensor(t).name, " axis ", axis));
      }
      return it->second;
    }
    DimId d = smg.AddDim(StrCat("d", root_to_dim.size()), extent);
    root_to_dim.emplace(root, d);
    return d;
  };

  // Collects the global dims of all extent>1 axes of a tensor.
  auto tensor_dims = [&](TensorId t) -> StatusOr<std::vector<DimId>> {
    std::set<DimId> dims;
    const Shape& shape = graph.tensor(t).shape;
    for (int i = 0; i < shape.rank(); ++i) {
      if (shape.dim(i) > 1) {
        SF_ASSIGN_OR_RETURN(DimId d, dim_of_axis(t, i));
        dims.insert(d);
      }
    }
    return std::vector<DimId>(dims.begin(), dims.end());
  };

  // Phase 3: data spaces (one per tensor, shared between producer and
  // consumers — this *is* the fused intermediate data space of Fig. 4).
  result.tensor_space.assign(static_cast<size_t>(num_tensors), -1);
  result.tensor_axis_dims.resize(static_cast<size_t>(num_tensors));
  for (const TensorInfo& t : graph.tensors()) {
    std::vector<DimId>& axes = result.tensor_axis_dims[static_cast<size_t>(t.id)];
    axes.assign(static_cast<size_t>(t.shape.rank()), kNoDim);
    for (int i = 0; i < t.shape.rank(); ++i) {
      if (t.shape.dim(i) > 1) {
        SF_ASSIGN_OR_RETURN(axes[static_cast<size_t>(i)], dim_of_axis(t.id, i));
      }
    }
  }
  for (const TensorInfo& t : graph.tensors()) {
    Space s;
    s.name = t.name;
    s.kind = SpaceKind::kData;
    switch (t.kind) {
      case TensorKind::kInput:
        s.role = DataRole::kInput;
        break;
      case TensorKind::kWeight:
        s.role = DataRole::kWeight;
        break;
      case TensorKind::kConstant:
        s.role = DataRole::kConstant;
        break;
      case TensorKind::kIntermediate:
        s.role = DataRole::kIntermediate;
        break;
      case TensorKind::kOutput:
        s.role = DataRole::kOutput;
        break;
    }
    SF_ASSIGN_OR_RETURN(s.dims, tensor_dims(t.id));
    s.tensor = t.id;
    s.elem_bytes = DTypeSize(t.dtype);
    result.tensor_space[static_cast<size_t>(t.id)] = smg.AddSpace(std::move(s));
  }

  // Phase 4: iteration spaces and mappings.
  result.op_space.assign(graph.ops().size(), -1);
  for (const Op& op : graph.ops()) {
    const Shape& out = graph.tensor(op.output).shape;

    // Iteration-space dims: the output dims plus the contracted dim.
    std::set<DimId> iter_dims;
    SF_ASSIGN_OR_RETURN(std::vector<DimId> out_dims, tensor_dims(op.output));
    iter_dims.insert(out_dims.begin(), out_dims.end());

    DimId contract_dim = kNoDim;
    if (op.kind == OpKind::kMatMul) {
      const Shape& a = graph.tensor(op.inputs[0]).shape;
      const Shape& b = graph.tensor(op.inputs[1]).shape;
      MatMulAxes axes = ResolveMatMulAxes(op, a, b);
      if (a.dim(axes.m_a) > 1) {
        SF_ASSIGN_OR_RETURN(DimId unused_m, dim_of_axis(op.inputs[0], axes.m_a));
        (void)unused_m;
      }
      if (a.dim(axes.k_a) > 1) {
        SF_ASSIGN_OR_RETURN(contract_dim, dim_of_axis(op.inputs[0], axes.k_a));
        iter_dims.insert(contract_dim);
      }
    } else if (op.kind == OpKind::kReduce) {
      const Shape& in = graph.tensor(op.inputs[0]).shape;
      if (in.dim(in.rank() - 1) > 1) {
        SF_ASSIGN_OR_RETURN(contract_dim, dim_of_axis(op.inputs[0], in.rank() - 1));
        iter_dims.insert(contract_dim);
      }
    }

    Space iter;
    iter.name = op.name;
    iter.kind = SpaceKind::kIteration;
    iter.dims.assign(iter_dims.begin(), iter_dims.end());
    iter.op = op.id;
    iter.elem_bytes = DTypeSize(graph.tensor(op.output).dtype);
    SpaceId iter_id = smg.AddSpace(std::move(iter));
    result.op_space[static_cast<size_t>(op.id)] = iter_id;

    // Input mappings: One-to-One when the input covers all iteration dims,
    // otherwise one One-to-All per missing dim (the reuse direction).
    for (TensorId in_id : op.inputs) {
      SpaceId in_space = result.tensor_space[static_cast<size_t>(in_id)];
      std::vector<DimId> missing;
      for (DimId d : iter_dims) {
        if (!smg.space(in_space).HasDim(d)) {
          missing.push_back(d);
        }
      }
      if (missing.empty()) {
        Mapping m;
        m.src = in_space;
        m.dst = iter_id;
        m.kind = MappingKind::kOneToOne;
        m.op = op.id;
        smg.AddMapping(m);
      } else {
        for (DimId d : missing) {
          Mapping m;
          m.src = in_space;
          m.dst = iter_id;
          m.kind = MappingKind::kOneToAll;
          m.dim = d;
          m.op = op.id;
          smg.AddMapping(m);
        }
      }
    }

    // Output mapping: All-to-One for contractions, One-to-One otherwise.
    SpaceId out_space = result.tensor_space[static_cast<size_t>(op.output)];
    Mapping mo;
    mo.src = iter_id;
    mo.dst = out_space;
    mo.op = op.id;
    if (contract_dim != kNoDim) {
      mo.kind = MappingKind::kAllToOne;
      mo.dim = contract_dim;
      if (op.kind == OpKind::kMatMul) {
        mo.reduce = ReduceOpKind::kDot;
      } else {
        switch (op.attrs.reduce) {
          case ReduceKind::kMax:
            mo.reduce = ReduceOpKind::kMax;
            break;
          case ReduceKind::kSum:
            mo.reduce = ReduceOpKind::kSum;
            break;
          case ReduceKind::kMean:
            mo.reduce = ReduceOpKind::kMean;
            break;
        }
      }
    } else {
      mo.kind = MappingKind::kOneToOne;
    }
    smg.AddMapping(mo);
    (void)out;
  }

  return result;
}

}  // namespace spacefusion
