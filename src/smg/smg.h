// The Space-Mapping Graph (SMG) — the paper's central abstraction (Sec. 4.1).
//
// An SMG models a fused multi-operator computation as a set of geometric
// *computational spaces* living in one shared N-dimensional fused space:
//   * data spaces abstract tensors (inputs, weights, intermediates, outputs);
//   * iteration spaces abstract the nested-loop structure of each operator.
// Spaces are connected by *space mappings*:
//   * One-to-One  — element-wise correspondence (also inter-operator edges);
//   * One-to-All  — a source element is reused along a direction dim
//                   (operand reuse in GEMM, broadcast of reduced stats);
//   * All-to-One  — a whole extent collapses along a direction dim
//                   (reductions: max / sum / mean / dot).
// Each directional mapping carries the global dimension it points along,
// which is what the slicers reason about (Table 3).
#ifndef SPACEFUSION_SRC_SMG_SMG_H_
#define SPACEFUSION_SRC_SMG_SMG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/op.h"
#include "src/tensor/dtype.h"

namespace spacefusion {

using DimId = std::int32_t;
using SpaceId = std::int32_t;
using MappingId = std::int32_t;
inline constexpr DimId kNoDim = -1;

// One axis of the fused computational space.
struct FusedDim {
  DimId id = kNoDim;
  std::string name;
  std::int64_t extent = 1;
};

enum class SpaceKind { kData, kIteration };

// Where a data space physically lives before scheduling decisions.
enum class DataRole { kInput, kWeight, kConstant, kIntermediate, kOutput, kNone };

struct Space {
  SpaceId id = -1;
  std::string name;
  SpaceKind kind = SpaceKind::kData;
  DataRole role = DataRole::kNone;
  // Global dims this space extends along (sorted ascending, no duplicates).
  std::vector<DimId> dims;
  // Back-links into the operator graph.
  TensorId tensor = kInvalidTensor;  // data spaces
  OpId op = -1;                      // iteration spaces
  std::int64_t elem_bytes = 2;

  bool HasDim(DimId d) const;
  bool IsGraphBoundaryInput() const {
    return kind == SpaceKind::kData &&
           (role == DataRole::kInput || role == DataRole::kWeight || role == DataRole::kConstant);
  }
};

enum class MappingKind { kOneToOne, kOneToAll, kAllToOne };

const char* MappingKindName(MappingKind kind);

struct Mapping {
  MappingId id = -1;
  SpaceId src = -1;
  SpaceId dst = -1;
  MappingKind kind = MappingKind::kOneToOne;
  // Direction dim for One-to-All / All-to-One; kNoDim for One-to-One.
  DimId dim = kNoDim;
  // Reduction semantics of an All-to-One.
  ReduceOpKind reduce = ReduceOpKind::kSum;
  // Operator that induced this mapping (for diagnostics and lowering).
  OpId op = -1;
};

class Smg {
 public:
  explicit Smg(std::string name = "smg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  DimId AddDim(std::string name, std::int64_t extent);
  SpaceId AddSpace(Space space);
  MappingId AddMapping(Mapping mapping);

  const std::vector<FusedDim>& dims() const { return dims_; }
  const std::vector<Space>& spaces() const { return spaces_; }
  const std::vector<Mapping>& mappings() const { return mappings_; }

  const FusedDim& dim(DimId id) const { return dims_[static_cast<size_t>(id)]; }
  const Space& space(SpaceId id) const { return spaces_[static_cast<size_t>(id)]; }
  Space& space(SpaceId id) { return spaces_[static_cast<size_t>(id)]; }
  const Mapping& mapping(MappingId id) const { return mappings_[static_cast<size_t>(id)]; }

  int num_dims() const { return static_cast<int>(dims_.size()); }

  // All directional (O2A / A2O) mappings whose direction is `d`.
  std::vector<MappingId> MappingsAlongDim(DimId d) const;
  // Only the All-to-One subset.
  std::vector<MappingId> AllToOnesAlongDim(DimId d) const;

  // True if `m` is an "input One-to-All": its source space is a kernel input
  // resident in global memory, so slicing it creates no inter-block flow
  // dependency (Sec. 4.2).
  bool IsInputOneToAll(const Mapping& m) const;

  // Outgoing / incoming mapping ids per space.
  const std::vector<MappingId>& outgoing(SpaceId s) const {
    return outgoing_[static_cast<size_t>(s)];
  }
  const std::vector<MappingId>& incoming(SpaceId s) const {
    return incoming_[static_cast<size_t>(s)];
  }

  // True if any directed mapping path leads from `from` to `to`.
  bool Reaches(SpaceId from, SpaceId to) const;

  // Element count of a space (product of its dims' extents).
  std::int64_t SpaceVolume(SpaceId s) const;

  // Sum of data-space volumes (elements) that extend along `d`; the temporal
  // slicer prefers the dim with the largest value (Sec. 5.1: greater on-chip
  // allocation for dependencies along that dim).
  std::int64_t DataVolumeAlongDim(DimId d) const;

  // Human-readable dump (spaces, dims, mappings with directions).
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<FusedDim> dims_;
  std::vector<Space> spaces_;
  std::vector<Mapping> mappings_;
  std::vector<std::vector<MappingId>> outgoing_;
  std::vector<std::vector<MappingId>> incoming_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SMG_SMG_H_
