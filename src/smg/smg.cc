#include "src/smg/smg.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/support/logging.h"

namespace spacefusion {

const char* MappingKindName(MappingKind kind) {
  switch (kind) {
    case MappingKind::kOneToOne:
      return "O2O";
    case MappingKind::kOneToAll:
      return "O2A";
    case MappingKind::kAllToOne:
      return "A2O";
  }
  return "?";
}

bool Space::HasDim(DimId d) const {
  return std::find(dims.begin(), dims.end(), d) != dims.end();
}

DimId Smg::AddDim(std::string name, std::int64_t extent) {
  FusedDim d;
  d.id = static_cast<DimId>(dims_.size());
  d.name = std::move(name);
  d.extent = extent;
  dims_.push_back(std::move(d));
  return dims_.back().id;
}

SpaceId Smg::AddSpace(Space space) {
  space.id = static_cast<SpaceId>(spaces_.size());
  std::sort(space.dims.begin(), space.dims.end());
  spaces_.push_back(std::move(space));
  outgoing_.emplace_back();
  incoming_.emplace_back();
  return spaces_.back().id;
}

MappingId Smg::AddMapping(Mapping mapping) {
  mapping.id = static_cast<MappingId>(mappings_.size());
  SF_CHECK_GE(mapping.src, 0);
  SF_CHECK_GE(mapping.dst, 0);
  if (mapping.kind != MappingKind::kOneToOne) {
    SF_CHECK_NE(mapping.dim, kNoDim) << "directional mapping needs a direction dim";
  }
  outgoing_[static_cast<size_t>(mapping.src)].push_back(mapping.id);
  incoming_[static_cast<size_t>(mapping.dst)].push_back(mapping.id);
  mappings_.push_back(mapping);
  return mappings_.back().id;
}

std::vector<MappingId> Smg::MappingsAlongDim(DimId d) const {
  std::vector<MappingId> out;
  for (const Mapping& m : mappings_) {
    if (m.kind != MappingKind::kOneToOne && m.dim == d) {
      out.push_back(m.id);
    }
  }
  return out;
}

std::vector<MappingId> Smg::AllToOnesAlongDim(DimId d) const {
  std::vector<MappingId> out;
  for (const Mapping& m : mappings_) {
    if (m.kind == MappingKind::kAllToOne && m.dim == d) {
      out.push_back(m.id);
    }
  }
  return out;
}

bool Smg::IsInputOneToAll(const Mapping& m) const {
  return m.kind == MappingKind::kOneToAll && space(m.src).IsGraphBoundaryInput();
}

bool Smg::Reaches(SpaceId from, SpaceId to) const {
  if (from == to) {
    return true;
  }
  std::vector<bool> seen(spaces_.size(), false);
  std::deque<SpaceId> queue{from};
  seen[static_cast<size_t>(from)] = true;
  while (!queue.empty()) {
    SpaceId cur = queue.front();
    queue.pop_front();
    for (MappingId mid : outgoing_[static_cast<size_t>(cur)]) {
      SpaceId next = mapping(mid).dst;
      if (next == to) {
        return true;
      }
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        queue.push_back(next);
      }
    }
  }
  return false;
}

std::int64_t Smg::SpaceVolume(SpaceId s) const {
  std::int64_t v = 1;
  for (DimId d : space(s).dims) {
    v *= dim(d).extent;
  }
  return v;
}

std::int64_t Smg::DataVolumeAlongDim(DimId d) const {
  std::int64_t v = 0;
  for (const Space& s : spaces_) {
    if (s.kind == SpaceKind::kData && s.HasDim(d)) {
      v += SpaceVolume(s.id);
    }
  }
  return v;
}

std::string Smg::ToString() const {
  std::ostringstream out;
  out << "smg " << name_ << " dims{";
  for (const FusedDim& d : dims_) {
    out << " " << d.name << "=" << d.extent;
  }
  out << " }\n";
  for (const Space& s : spaces_) {
    out << "  " << (s.kind == SpaceKind::kData ? "data" : "iter") << " #" << s.id << " " << s.name
        << " (";
    for (size_t i = 0; i < s.dims.size(); ++i) {
      out << (i > 0 ? "," : "") << dim(s.dims[i]).name;
    }
    out << ")\n";
  }
  for (const Mapping& m : mappings_) {
    out << "  " << space(m.src).name << " -" << MappingKindName(m.kind);
    if (m.dim != kNoDim) {
      out << "(" << dim(m.dim).name << ")";
    }
    if (m.kind == MappingKind::kAllToOne) {
      out << "[" << ReduceOpKindName(m.reduce) << "]";
    }
    out << "-> " << space(m.dst).name << "\n";
  }
  return out.str();
}

}  // namespace spacefusion
