// Convenience entry points for the evaluation harness: estimating whole
// models under SpaceFusion or under a baseline, on a given architecture.
#ifndef SPACEFUSION_SRC_CORE_MODEL_RUNNER_H_
#define SPACEFUSION_SRC_CORE_MODEL_RUNNER_H_

#include <optional>

#include "src/baselines/baseline.h"
#include "src/core/compiler.h"
#include "src/core/engine.h"
#include "src/sim/memory_sim.h"

namespace spacefusion {

// Compiles a whole model through the engine API. The one entry point the
// bench targets (table5, fig14, fig16, sf-bench-json) and sf-compile share:
// with `engine == nullptr` a fresh CompilerEngine serves the request (cold
// compile); passing an engine reuses its cross-model program cache.
StatusOr<CompiledModel> CompileModelWithSpaceFusion(const ModelGraph& model,
                                                    const CompileOptions& options,
                                                    CompilerEngine* engine = nullptr);

// Compiles one subprogram through the engine API (same engine semantics).
StatusOr<CompiledSubprogram> CompileGraphWithSpaceFusion(const Graph& graph,
                                                         const CompileOptions& options,
                                                         CompilerEngine* engine = nullptr);

// Executes a model under a baseline planner on the cost model. Returns
// nullopt when the baseline does not support any subprogram on this
// architecture (matching the paper's absent bars).
std::optional<ExecutionReport> EstimateModelWithBaseline(const ModelGraph& model,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch);

// Plans one subprogram with a baseline and estimates it (nullopt if
// unsupported).
std::optional<ExecutionReport> EstimateGraphWithBaseline(const Graph& graph,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch);

// Compiles + estimates one subprogram with SpaceFusion.
StatusOr<ExecutionReport> EstimateGraphWithSpaceFusion(const Graph& graph, const GpuArch& arch);

// Cache-level statistics (Fig. 15) for a kernel plan, via the trace-driven
// memory simulator.
ExecutionReport SimulateMemory(const std::vector<KernelSpec>& kernels, const GpuArch& arch);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_MODEL_RUNNER_H_
