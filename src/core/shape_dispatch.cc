#include "src/core/shape_dispatch.h"

#include <utility>

#include "src/support/string_util.h"

namespace spacefusion {

Status ShapeDispatchTable::Add(ShapeCompileResult result) {
  const ModelGraph& model = result.bucketed.model;
  if (result.bucketed.layouts.size() != model.subprograms.size()) {
    return InvalidArgument(StrCat("bucketed model carries ", result.bucketed.layouts.size(),
                                  " layouts for ", model.subprograms.size(), " subprograms"));
  }
  auto entry = std::make_unique<Entry>();
  // Replay CompileModel's intra-request dedup (first-seen fingerprint order)
  // so subprogram i maps to the unique program that compiled it. Dispatch
  // assumes the engine's default StructuralHash fingerprint.
  std::map<std::uint64_t, size_t> unique_index;
  for (const Subprogram& sub : model.subprograms) {
    const std::uint64_t key = sub.graph.StructuralHash();
    auto it = unique_index.find(key);
    if (it == unique_index.end()) {
      it = unique_index.emplace(key, unique_index.size()).first;
    }
    entry->sub_to_unique.push_back(it->second);
  }
  if (unique_index.size() != result.compiled.unique_subprograms.size()) {
    return InvalidArgument(StrCat("bucket ", result.bucketed.bucket_key.Label(), " compiled ",
                                  result.compiled.unique_subprograms.size(),
                                  " unique programs but the model dedupes to ",
                                  unique_index.size()));
  }
  entry->result = std::move(result);
  const std::string label = entry->result.bucketed.bucket_key.Label();
  MutexLock lock(mu_);
  entries_[label] = std::move(entry);
  return Status::Ok();
}

const ShapeDispatchTable::Entry* ShapeDispatchTable::Route(const ShapeKey& shape) const {
  return EntryFor(policy_.BucketFor(shape));
}

const ShapeDispatchTable::Entry* ShapeDispatchTable::EntryFor(const ShapeKey& bucket) const {
  MutexLock lock(mu_);
  auto it = entries_.find(bucket.Label());
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ShapeDispatchTable::Buckets() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [label, entry] : entries_) {
    out.push_back(label);
  }
  return out;
}

Status RunBucketedSubprogram(const ShapeDispatchTable::Entry& entry, size_t sub_index,
                             const BucketedModel& exact, const TensorEnv& exact_inputs,
                             TensorEnv* exact_outputs, const BucketRunOptions& run) {
  const BucketedModel& bucketed = entry.result.bucketed;
  if (sub_index >= bucketed.model.subprograms.size() ||
      sub_index >= exact.model.subprograms.size()) {
    return InvalidArgument(StrCat("subprogram index ", sub_index, " out of range"));
  }
  const Graph& bucket_graph = bucketed.model.subprograms[sub_index].graph;
  const Graph& exact_graph = exact.model.subprograms[sub_index].graph;
  if (bucket_graph.tensors().size() != exact_graph.tensors().size()) {
    return InvalidArgument(
        StrCat("exact graph ", exact_graph.name(), " does not correspond to bucket graph ",
               bucket_graph.name(), ": ", exact_graph.tensors().size(), " vs ",
               bucket_graph.tensors().size(), " tensors"));
  }
  if (exact_inputs.size() != exact_graph.tensors().size()) {
    return InvalidArgument(StrCat("exact input env has ", exact_inputs.size(), " slots for ",
                                  exact_graph.tensors().size(), " tensors"));
  }
  const SubprogramLayout& layout = bucketed.layouts[sub_index];
  const AxisExtents exact_extents = exact.ExactExtents();
  const AxisExtents bucket_extents = bucketed.BucketExtents();

  TensorEnv bucket_env(bucket_graph.tensors().size());
  const std::vector<TensorId> input_ids = bucket_graph.InputIds();
  if (input_ids.size() != layout.inputs.size()) {
    return InvalidArgument(StrCat("layout lists ", layout.inputs.size(), " inputs for ",
                                  input_ids.size(), " graph inputs"));
  }
  for (size_t i = 0; i < input_ids.size(); ++i) {
    const size_t id = static_cast<size_t>(input_ids[i]);
    if (!exact_inputs[id].defined()) {
      return InvalidArgument(
          StrCat("exact input ", exact_graph.tensor(input_ids[i]).name, " is undefined"));
    }
    SF_ASSIGN_OR_RETURN(bucket_env[id], PadToBucket(layout.inputs[i], exact_inputs[id],
                                                    exact_extents, bucket_extents));
  }
  // Weights are shape-invariant between the exact and bucket configs;
  // constants re-splat at the bucket shape.
  for (TensorId weight : bucket_graph.WeightIds()) {
    const size_t id = static_cast<size_t>(weight);
    if (!exact_inputs[id].defined()) {
      return InvalidArgument(
          StrCat("exact weight ", exact_graph.tensor(weight).name, " is undefined"));
    }
    if (exact_inputs[id].shape() != bucket_graph.tensor(weight).shape) {
      return InvalidArgument(StrCat("weight ", bucket_graph.tensor(weight).name,
                                    " is not shape-invariant across the bucket"));
    }
    bucket_env[id] = exact_inputs[id];
  }
  for (const TensorInfo& t : bucket_graph.tensors()) {
    if (t.kind == TensorKind::kConstant) {
      bucket_env[static_cast<size_t>(t.id)] = Tensor::Full(t.shape, t.constant_value, t.dtype);
    }
  }

  const CompiledSubprogram& compiled =
      entry.result.compiled.unique_subprograms[entry.sub_to_unique[sub_index]];
  TensorEnv bucket_outputs;
  if (run.backend == ExecBackend::kJit && run.jit != nullptr) {
    SF_RETURN_IF_ERROR(run.jit->RunProgram(compiled.program, bucket_graph, bucket_env,
                                           &bucket_outputs));
  } else {
    SF_RETURN_IF_ERROR(RunScheduledProgramWithBackend(run.backend, compiled.program, bucket_graph,
                                                      bucket_env, &bucket_outputs));
  }

  const std::vector<TensorId> output_ids = bucket_graph.OutputIds();
  if (output_ids.size() != layout.outputs.size()) {
    return InvalidArgument(StrCat("layout lists ", layout.outputs.size(), " outputs for ",
                                  output_ids.size(), " graph outputs"));
  }
  exact_outputs->assign(exact_graph.tensors().size(), Tensor());
  for (size_t i = 0; i < output_ids.size(); ++i) {
    const size_t id = static_cast<size_t>(output_ids[i]);
    SF_ASSIGN_OR_RETURN((*exact_outputs)[id], SliceToExact(layout.outputs[i], bucket_outputs[id],
                                                           exact_extents, bucket_extents));
  }
  return Status::Ok();
}

}  // namespace spacefusion
