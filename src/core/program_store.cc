#include "src/core/program_store.h"

#include <cstdio>

#include "src/schedule/serialize.h"
#include "src/support/file_util.h"
#include "src/support/string_util.h"

namespace spacefusion {

void SerializeCompiledSubprogram(const CompiledSubprogram& sub, ByteWriter* w) {
  SerializeScheduledProgram(sub.program, w);
  w->U64(sub.kernels.size());
  for (const KernelSpec& kernel : sub.kernels) {
    SerializeKernelSpec(kernel, w);
  }
  SerializeExecutionReport(sub.estimate, w);
  w->F64(sub.compile_time.slicing_ms);
  w->F64(sub.compile_time.enum_cfg_ms);
  w->F64(sub.compile_time.tuning_s);
  w->I64(sub.tuning.configs_enumerated);
  w->I32(sub.tuning.configs_screened);
  w->I32(sub.tuning.configs_tried);
  w->I32(sub.tuning.configs_early_quit);
  w->F64(sub.tuning.best_time_us);
  w->F64(sub.tuning.simulated_tuning_seconds);
  w->I32(sub.candidate_programs);
  // request_id and the transfer-store fields (tuned_kernels,
  // tuning.{configs_transfer_seeded,transfer_signature,admitted_configs})
  // intentionally omitted (see header): they describe one past process's
  // tuning run, and omitting them keeps decode + re-encode byte-identical.
}

Status DeserializeCompiledSubprogram(ByteReader* r, CompiledSubprogram* sub) {
  CompiledSubprogram out;
  SF_RETURN_IF_ERROR(DeserializeScheduledProgram(r, &out.program));
  std::uint64_t num_kernels = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_kernels, 1));
  out.kernels.resize(num_kernels);
  for (std::uint64_t i = 0; i < num_kernels; ++i) {
    SF_RETURN_IF_ERROR(DeserializeKernelSpec(r, &out.kernels[i]));
  }
  SF_RETURN_IF_ERROR(DeserializeExecutionReport(r, &out.estimate));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.slicing_ms));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.enum_cfg_ms));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.tuning_s));
  SF_RETURN_IF_ERROR(r->I64(&out.tuning.configs_enumerated));
  SF_RETURN_IF_ERROR(r->I32(&out.tuning.configs_screened));
  SF_RETURN_IF_ERROR(r->I32(&out.tuning.configs_tried));
  SF_RETURN_IF_ERROR(r->I32(&out.tuning.configs_early_quit));
  SF_RETURN_IF_ERROR(r->F64(&out.tuning.best_time_us));
  SF_RETURN_IF_ERROR(r->F64(&out.tuning.simulated_tuning_seconds));
  SF_RETURN_IF_ERROR(r->I32(&out.candidate_programs));
  if (out.candidate_programs < 0) {
    return DataLoss(StrCat("negative candidate_programs ", out.candidate_programs));
  }
  *sub = std::move(out);
  return Status::Ok();
}

void SerializeCompiledModel(const CompiledModel& model, ByteWriter* w) {
  w->U64(model.unique_subprograms.size());
  for (const CompiledSubprogram& sub : model.unique_subprograms) {
    SerializeCompiledSubprogram(sub, w);
  }
  SerializeExecutionReport(model.total, w);
  w->F64(model.compile_time.slicing_ms);
  w->F64(model.compile_time.enum_cfg_ms);
  w->F64(model.compile_time.tuning_s);
  w->I32(model.cache_hits);
}

Status DeserializeCompiledModel(ByteReader* r, CompiledModel* model) {
  CompiledModel out;
  std::uint64_t num_subs = 0;
  SF_RETURN_IF_ERROR(r->Count(&num_subs, 1));
  out.unique_subprograms.resize(num_subs);
  for (std::uint64_t i = 0; i < num_subs; ++i) {
    SF_RETURN_IF_ERROR(DeserializeCompiledSubprogram(r, &out.unique_subprograms[i]));
  }
  SF_RETURN_IF_ERROR(DeserializeExecutionReport(r, &out.total));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.slicing_ms));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.enum_cfg_ms));
  SF_RETURN_IF_ERROR(r->F64(&out.compile_time.tuning_s));
  SF_RETURN_IF_ERROR(r->I32(&out.cache_hits));
  if (out.cache_hits < 0) {
    return DataLoss(StrCat("negative cache_hits ", out.cache_hits));
  }
  *model = std::move(out);
  return Status::Ok();
}

std::string EncodePersistedProgram(const PersistedProgram& program) {
  ByteWriter payload;
  payload.Str(program.arch);
  payload.U64(program.options_digest);
  payload.U64(program.fingerprint);
  payload.Str(program.canonical);
  payload.Str(program.bucket);
  SerializeCompiledSubprogram(program.compiled, &payload);

  ByteWriter blob;
  for (char c : kProgramBlobMagic) {
    blob.U8(static_cast<std::uint8_t>(c));
  }
  blob.U32(kProgramBlobSchemaVersion);
  blob.U64(Fnv1a64(payload.bytes()));
  std::string out = blob.Take();
  out.append(payload.bytes());
  return out;
}

Status DecodePersistedProgram(const std::string& bytes, PersistedProgram* program) {
  ByteReader r(bytes);
  for (char expected : kProgramBlobMagic) {
    std::uint8_t byte = 0;
    SF_RETURN_IF_ERROR(r.U8(&byte));
    if (byte != static_cast<std::uint8_t>(expected)) {
      return DataLoss("bad magic: not a SpaceFusion program blob");
    }
  }
  std::uint32_t version = 0;
  SF_RETURN_IF_ERROR(r.U32(&version));
  if (version > kProgramBlobSchemaVersion) {
    return Unsupported(StrCat("program blob schema version ", version,
                              " is newer than supported version ", kProgramBlobSchemaVersion));
  }
  if (version == 0) {
    return DataLoss("invalid program blob schema version 0");
  }
  std::uint64_t checksum = 0;
  SF_RETURN_IF_ERROR(r.U64(&checksum));
  // Integrity before structure: nothing past this header is parsed until the
  // whole payload checks out, so one flipped bit anywhere is caught here.
  const std::uint64_t actual = Fnv1a64(bytes.data() + r.pos(), bytes.size() - r.pos());
  if (actual != checksum) {
    return DataLoss(StrCat("payload checksum mismatch: header says ", checksum, ", payload is ",
                           actual));
  }

  PersistedProgram out;
  SF_RETURN_IF_ERROR(r.Str(&out.arch));
  SF_RETURN_IF_ERROR(r.U64(&out.options_digest));
  SF_RETURN_IF_ERROR(r.U64(&out.fingerprint));
  SF_RETURN_IF_ERROR(r.Str(&out.canonical));
  if (version >= 2) {
    // v1 blobs predate shape buckets; their bucket reads back empty.
    SF_RETURN_IF_ERROR(r.Str(&out.bucket));
  }
  SF_RETURN_IF_ERROR(DeserializeCompiledSubprogram(&r, &out.compiled));
  if (!r.AtEnd()) {
    return DataLoss(StrCat(r.remaining(), " trailing byte(s) after program payload"));
  }
  *program = std::move(out);
  return Status::Ok();
}

std::string PersistentProgramCache::EntryPath(std::uint64_t fingerprint,
                                              std::uint64_t digest) const {
  char name[48];
  std::snprintf(name, sizeof(name), "%016llx-%016llx.sfpc",
                static_cast<unsigned long long>(fingerprint),
                static_cast<unsigned long long>(digest));
  return StrCat(dir_, "/", name);
}

PersistentProgramCache::LoadResult PersistentProgramCache::Load(
    std::uint64_t fingerprint, std::uint64_t digest, const std::string& arch,
    const std::string& canonical, CompiledSubprogram* out, std::string* detail,
    const std::string& bucket) const {
  StatusOr<std::string> bytes = ReadFileToString(EntryPath(fingerprint, digest));
  if (!bytes.ok()) {
    if (detail != nullptr) {
      *detail = bytes.status().ToString();
    }
    return LoadResult::kMiss;
  }
  PersistedProgram program;
  Status decoded = DecodePersistedProgram(*bytes, &program);
  if (!decoded.ok()) {
    if (detail != nullptr) {
      *detail = decoded.ToString();
    }
    return LoadResult::kCorrupt;
  }
  // The file name already encodes (fingerprint, digest); re-checking them —
  // plus the arch name and the full canonical graph form — catches renamed
  // files, digest-function drift, and fingerprint aliasing.
  if (program.fingerprint != fingerprint || program.options_digest != digest ||
      program.arch != arch || program.canonical != canonical || program.bucket != bucket) {
    if (detail != nullptr) {
      *detail = StrCat("stale entry: written for arch ", program.arch, ", digest ",
                       program.options_digest, ", fingerprint ", program.fingerprint,
                       ", bucket \"", program.bucket, "\"");
    }
    return LoadResult::kStale;
  }
  *out = std::move(program.compiled);
  return LoadResult::kHit;
}

Status PersistentProgramCache::Store(std::uint64_t fingerprint, std::uint64_t digest,
                                     const std::string& arch, const std::string& canonical,
                                     const CompiledSubprogram& compiled,
                                     const std::string& bucket) const {
  PersistedProgram program;
  program.arch = arch;
  program.options_digest = digest;
  program.fingerprint = fingerprint;
  program.canonical = canonical;
  program.bucket = bucket;
  program.compiled = compiled;
  return AtomicWriteFile(EntryPath(fingerprint, digest), EncodePersistedProgram(program));
}

}  // namespace spacefusion
