#include "src/core/compiler.h"

#include <chrono>

#include "src/schedule/lowering.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {
double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

CompileOptions::CompileOptions() : arch(AmpereA100()) {}

Compiler::Compiler(CompileOptions options)
    : options_(std::move(options)),
      rc_(ResourceConfig::FromArch(options_.arch)),
      cost_(options_.arch) {}

StatusOr<CompiledSubprogram> Compiler::Compile(const Graph& graph) {
  std::uint64_t key = graph.StructuralHash();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second;
  }
  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, CompileUncached(graph));
  cache_.emplace(key, compiled);
  return compiled;
}

StatusOr<CompiledSubprogram> Compiler::CompileUncached(const Graph& graph) {
  SlicingOptions slicing;
  slicing.enable_temporal = options_.enable_temporal_slicing;
  slicing.search = options_.search;

  // Program pre-processing: independent chains (e.g. the three projections
  // of QKV) become their own fused SMGs; fusing them would build a fused
  // space over unrelated dimensions.
  auto t_slice = std::chrono::steady_clock::now();
  std::vector<Graph> components = SplitConnectedComponents(graph);

  // Concatenates per-graph pipelines into one candidate program.
  auto compile_pieces = [&](const std::vector<Graph>& pieces) -> StatusOr<ProgramCandidate> {
    ProgramCandidate candidate;
    for (const Graph& piece : pieces) {
      SF_ASSIGN_OR_RETURN(PipelineResult part, RunSlicingPipeline(piece, rc_, slicing));
      for (SlicingResult& kernel : part.candidates.front().kernels) {
        candidate.kernels.push_back(std::move(kernel));
      }
      candidate.partition_rounds += part.candidates.front().partition_rounds;
    }
    return candidate;
  };

  PipelineResult pipeline;
  if (components.size() == 1) {
    SF_ASSIGN_OR_RETURN(pipeline, RunSlicingPipeline(graph, rc_, slicing));
  } else {
    SF_ASSIGN_OR_RETURN(ProgramCandidate fused, compile_pieces(components));
    pipeline.candidates.push_back(std::move(fused));
  }

  // Sec. 5.3 candidate exploration: the maximally fused program competes
  // against a conservatively split one (matmuls isolated, MI runs fused) —
  // fusion across giant-weight GEMM chains is not always profitable, and
  // the tuner decides by measurement.
  {
    std::vector<Graph> split_pieces;
    for (const Graph& component : components) {
      for (Graph& piece : SplitAtComputeBoundaries(component)) {
        split_pieces.push_back(std::move(piece));
      }
    }
    if (split_pieces.size() > components.size()) {
      StatusOr<ProgramCandidate> split = compile_pieces(split_pieces);
      if (split.ok()) {
        pipeline.candidates.push_back(std::move(split).value());
      }
    }
  }
  double slicing_ms = ElapsedMs(t_slice);

  // Every *discovered* fusion counts toward the pattern statistics, even if
  // tuning ultimately prefers another candidate program (Table 6 counts what
  // the scheduler can fuse, not what it deploys).
  for (const ProgramCandidate& candidate : pipeline.candidates) {
    for (const SlicingResult& kernel : candidate.kernels) {
      RecordFusionPattern(kernel.schedule.graph);
    }
  }

  // Tune every candidate program, keep the fastest (Sec. 5.3).
  CompiledSubprogram best;
  bool have_best = false;
  double total_tuning_s = 0.0;
  double enum_ms = 0.0;
  int tried = 0;

  for (ProgramCandidate& candidate : pipeline.candidates) {
    CompiledSubprogram compiled;
    compiled.candidate_programs = static_cast<int>(pipeline.candidates.size());
    double candidate_time = 0.0;
    AddressMap addresses;
    for (SlicingResult& kernel : candidate.kernels) {
      auto t_enum = std::chrono::steady_clock::now();
      // (Search spaces were enumerated during slicing; account re-planning.)
      enum_ms += ElapsedMs(t_enum);
      if (options_.enable_auto_scheduling) {
        TuningStats stats = TuneKernel(&kernel, cost_, rc_, options_.tuner);
        total_tuning_s += stats.simulated_tuning_seconds;
        tried += stats.configs_tried;
        compiled.tuning.configs_early_quit += stats.configs_early_quit;
      } else {
        ApplyExpertConfig(&kernel, rc_);
      }
      KernelSpec spec = LowerSchedule(kernel.schedule, &addresses);
      candidate_time += cost_.EstimateKernel(spec).time_us;
      compiled.program.kernels.push_back(kernel.schedule);
      compiled.kernels.push_back(std::move(spec));
    }
    compiled.estimate = cost_.Estimate(compiled.kernels);
    if (!have_best || compiled.estimate.time_us < best.estimate.time_us) {
      best = std::move(compiled);
      have_best = true;
    }
  }
  SF_CHECK(have_best);

  best.compile_time.slicing_ms = slicing_ms;
  best.compile_time.enum_cfg_ms = enum_ms;
  best.compile_time.tuning_s = total_tuning_s;
  best.tuning.configs_tried = tried;
  best.tuning.best_time_us = best.estimate.time_us;
  best.tuning.simulated_tuning_seconds = total_tuning_s;
  return best;
}

StatusOr<CompiledModel> Compiler::CompileModel(const ModelGraph& model) {
  CompiledModel out;
  std::map<std::uint64_t, size_t> compiled_index;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = sub.graph.StructuralHash();
    auto it = compiled_index.find(key);
    if (it == compiled_index.end()) {
      SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, Compile(sub.graph));
      out.compile_time.slicing_ms += compiled.compile_time.slicing_ms;
      out.compile_time.enum_cfg_ms += compiled.compile_time.enum_cfg_ms;
      out.compile_time.tuning_s += compiled.compile_time.tuning_s;
      compiled_index.emplace(key, out.unique_subprograms.size());
      out.unique_subprograms.push_back(std::move(compiled));
      it = compiled_index.find(key);
    } else {
      ++out.cache_hits;
    }
    out.total += out.unique_subprograms[it->second].estimate.Scaled(sub.repeat);
  }
  return out;
}

void Compiler::RecordFusionPattern(const Graph& kernel_graph) {
  int a2o_ops = 0;
  bool has_ci = false;
  bool has_mi = false;
  for (const Op& op : kernel_graph.ops()) {
    if (op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce) {
      ++a2o_ops;
    }
    if (op.compute_intensive()) {
      has_ci = true;
    } else {
      has_mi = true;
    }
  }
  if (a2o_ops < 2) {
    return;  // Table 6 counts fused subgraphs with >= 2 All-to-Ones
  }
  std::uint64_t topo = kernel_graph.TopologyHash();
  if (seen_patterns_.count(topo) > 0) {
    return;
  }
  seen_patterns_.emplace(topo, true);
  ++fusion_stats_.total;
  if (has_ci && has_mi) {
    ++fusion_stats_.ci_and_mi;
  } else if (has_ci) {
    ++fusion_stats_.ci_only;
  } else {
    ++fusion_stats_.mi_only;
  }
}

}  // namespace spacefusion
