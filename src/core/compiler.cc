#include "src/core/compiler.h"

#include <algorithm>
#include <optional>

#include "src/obs/trace.h"
#include "src/schedule/lowering.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"

namespace spacefusion {

CompileOptions::CompileOptions() : arch(AmpereA100()) {}

Compiler::Compiler(CompileOptions options)
    : options_(std::move(options)),
      rc_(ResourceConfig::FromArch(options_.arch)),
      cost_(options_.arch) {}

StatusOr<CompiledSubprogram> Compiler::Compile(const Graph& graph) {
  std::uint64_t key = graph.StructuralHash();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    SF_COUNTER_ADD("compiler.cache_hits", 1);
    return it->second;
  }
  SF_COUNTER_ADD("compiler.cache_misses", 1);
  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, CompileUncached(graph));
  cache_.emplace(key, compiled);
  return compiled;
}

StatusOr<CompiledSubprogram> Compiler::CompileUncached(const Graph& graph) {
  // All wall-clock accounting below is span-derived: the accumulator totals
  // the spans this compile records (whether or not a trace session is
  // capturing them).
  PhaseAccumulator phases;
  ScopedSpan compile_span("compiler.compile");
  compile_span.Arg("graph", graph.name()).Arg("ops", static_cast<std::int64_t>(graph.ops().size()));
  SF_COUNTER_ADD("compiler.subprograms_compiled", 1);

  // Phase boundary 1: the input graph. Rejecting a malformed graph here —
  // with structured diagnostics — beats an SF_CHECK abort deep in slicing.
  if (options_.verify != VerifyMode::kOff) {
    ScopedSpan verify_span("verify.graph", "verify");
    DiagnosticReport report;
    report.SetContext(graph.name());
    VerifyGraph(graph, &report);
    verify_span.Arg("diagnostics", static_cast<std::int64_t>(report.diagnostics().size()));
    if (!report.ok()) {
      SF_COUNTER_ADD("verify.rejected_inputs", 1);
      return report.ToStatus(StatusCode::kInvalidArgument);
    }
  }

  SlicingOptions slicing;
  slicing.enable_temporal = options_.enable_temporal_slicing;
  slicing.search = options_.search;

  PipelineResult pipeline;
  {
    ScopedSpan pipeline_span("compiler.pipeline");

    // Program pre-processing: independent chains (e.g. the three projections
    // of QKV) become their own fused SMGs; fusing them would build a fused
    // space over unrelated dimensions.
    std::vector<Graph> components = SplitConnectedComponents(graph);

    // Concatenates per-graph pipelines into one candidate program. The
    // pieces are independent subgraphs, so their pipelines run concurrently
    // into indexed slots; the merge (and error selection) walks the slots
    // in piece order, keeping the result identical to the serial loop.
    auto compile_pieces = [&](const std::vector<Graph>& pieces) -> StatusOr<ProgramCandidate> {
      std::vector<std::optional<StatusOr<PipelineResult>>> parts(pieces.size());
      PhaseAccumulator* phase_stack = obs_internal::CurrentPhaseAccumulator();
      GlobalThreadPool().ParallelFor(
          static_cast<std::int64_t>(pieces.size()),
          [&, phase_stack](std::int64_t begin, std::int64_t end) {
            ScopedPhaseHandoff handoff(phase_stack);
            for (std::int64_t i = begin; i < end; ++i) {
              parts[static_cast<size_t>(i)] =
                  RunSlicingPipeline(pieces[static_cast<size_t>(i)], rc_, slicing);
            }
          });
      ProgramCandidate candidate;
      for (std::optional<StatusOr<PipelineResult>>& part : parts) {
        if (!part->ok()) {
          return part->status();
        }
        for (SlicingResult& kernel : part->value().candidates.front().kernels) {
          candidate.kernels.push_back(std::move(kernel));
        }
        candidate.partition_rounds += part->value().candidates.front().partition_rounds;
      }
      return candidate;
    };

    if (components.size() == 1) {
      SF_ASSIGN_OR_RETURN(pipeline, RunSlicingPipeline(graph, rc_, slicing));
    } else {
      SF_ASSIGN_OR_RETURN(ProgramCandidate fused, compile_pieces(components));
      pipeline.candidates.push_back(std::move(fused));
    }

    // Sec. 5.3 candidate exploration: the maximally fused program competes
    // against a conservatively split one (matmuls isolated, MI runs fused) —
    // fusion across giant-weight GEMM chains is not always profitable, and
    // the tuner decides by measurement.
    {
      std::vector<Graph> split_pieces;
      for (const Graph& component : components) {
        for (Graph& piece : SplitAtComputeBoundaries(component)) {
          split_pieces.push_back(std::move(piece));
        }
      }
      if (split_pieces.size() > components.size()) {
        StatusOr<ProgramCandidate> split = compile_pieces(split_pieces);
        if (split.ok()) {
          pipeline.candidates.push_back(std::move(split).value());
        }
      }
    }
    pipeline_span.Arg("candidates", static_cast<std::int64_t>(pipeline.candidates.size()));
  }
  SF_HISTOGRAM_OBSERVE("compiler.candidate_programs",
                       static_cast<double>(pipeline.candidates.size()));

  // Every *discovered* fusion counts toward the pattern statistics, even if
  // tuning ultimately prefers another candidate program (Table 6 counts what
  // the scheduler can fuse, not what it deploys).
  for (const ProgramCandidate& candidate : pipeline.candidates) {
    for (const SlicingResult& kernel : candidate.kernels) {
      RecordFusionPattern(kernel.schedule.graph);
    }
  }

  // Full mode: every candidate program the pipeline enumerated is verified
  // before tuning — each kernel's SMG build, plus slicing legality and
  // memory plan under every enumerated config. Violations here are compiler
  // bugs (the pipeline produced them), hence kInternal.
  if (options_.verify == VerifyMode::kFull) {
    ScopedSpan verify_span("verify.candidates", "verify");
    DiagnosticReport report;
    std::int64_t configs_checked = 0;
    for (const ProgramCandidate& candidate : pipeline.candidates) {
      for (const SlicingResult& kernel : candidate.kernels) {
        report.SetContext(kernel.schedule.graph.name());
        VerifyGraph(kernel.schedule.graph, &report);
        VerifySmgBuild(kernel.schedule.graph, kernel.schedule.built, &report);
        for (const ScheduleConfig& config : kernel.configs) {
          SmgSchedule probe = kernel.schedule;
          probe.ApplyConfig(config);
          PlanMemory(&probe, rc_);
          VerifySlicing(probe, &report);
          VerifyMemoryPlan(probe, rc_, &report);
          ++configs_checked;
        }
      }
    }
    verify_span.Arg("configs", configs_checked)
        .Arg("diagnostics", static_cast<std::int64_t>(report.diagnostics().size()));
    SF_COUNTER_ADD("verify.candidate_configs_checked", configs_checked);
    if (!report.ok()) {
      return report.ToStatus(StatusCode::kInternal);
    }
  }

  // Tune every candidate program, keep the fastest (Sec. 5.3).
  CompiledSubprogram best;
  bool have_best = false;
  double total_tuning_s = 0.0;
  int tried = 0;
  int screened = 0;

  for (ProgramCandidate& candidate : pipeline.candidates) {
    CompiledSubprogram compiled;
    compiled.candidate_programs = static_cast<int>(pipeline.candidates.size());
    double candidate_time = 0.0;
    AddressMap addresses;
    if (options_.enable_auto_scheduling) {
      // The candidate's kernels are independent SMG blocks: tune them
      // concurrently (each TuneKernel further parallelizes its config sweep
      // when it lands on the caller), then fold the stats in kernel order
      // so the totals are deterministic.
      std::vector<TuningStats> kernel_stats(candidate.kernels.size());
      PhaseAccumulator* phase_stack = obs_internal::CurrentPhaseAccumulator();
      GlobalThreadPool().ParallelFor(
          static_cast<std::int64_t>(candidate.kernels.size()),
          [&, phase_stack](std::int64_t begin, std::int64_t end) {
            ScopedPhaseHandoff handoff(phase_stack);
            for (std::int64_t i = begin; i < end; ++i) {
              kernel_stats[static_cast<size_t>(i)] =
                  TuneKernel(&candidate.kernels[static_cast<size_t>(i)], cost_, rc_,
                             options_.tuner, &cost_cache_);
            }
          });
      for (const TuningStats& stats : kernel_stats) {
        total_tuning_s += stats.simulated_tuning_seconds;
        tried += stats.configs_tried;
        screened += stats.configs_screened;
        compiled.tuning.configs_early_quit += stats.configs_early_quit;
      }
    } else {
      for (SlicingResult& kernel : candidate.kernels) {
        ApplyExpertConfig(&kernel, rc_);
      }
    }
    // Lowering stays serial: the AddressMap threads stable simulated
    // addresses through the kernels in execution order.
    for (SlicingResult& kernel : candidate.kernels) {
      ScopedSpan lower_span("compiler.lower");
      lower_span.Arg("kernel", kernel.schedule.graph.name());
      KernelSpec spec = LowerSchedule(kernel.schedule, &addresses);
      candidate_time += cost_.EstimateKernel(spec).time_us;
      compiled.program.kernels.push_back(kernel.schedule);
      compiled.kernels.push_back(std::move(spec));
    }
    {
      ScopedSpan estimate_span("compiler.estimate", "simulate");
      compiled.estimate = cost_.Estimate(compiled.kernels);
      estimate_span.Arg("time_us", compiled.estimate.time_us);
    }
    if (!have_best || compiled.estimate.time_us < best.estimate.time_us) {
      best = std::move(compiled);
      have_best = true;
    }
  }
  SF_CHECK(have_best);

  // Table 4's wall-clock columns, rebuilt from the span timings: the
  // enumeration column is exactly the "search.enum_cfg" spans, and the
  // slicing column is the rest of the slicing/partitioning pipeline.
  double enum_ms = phases.TotalMs("search.enum_cfg");
  double pipeline_ms = phases.TotalMs("compiler.pipeline");
  best.compile_time.slicing_ms = std::max(0.0, pipeline_ms - enum_ms);
  best.compile_time.enum_cfg_ms = enum_ms;
  best.compile_time.tuning_s = total_tuning_s;
  best.tuning.configs_screened = screened;
  best.tuning.configs_tried = tried;
  best.tuning.best_time_us = best.estimate.time_us;
  best.tuning.simulated_tuning_seconds = total_tuning_s;
  compile_span.Arg("configs_screened", screened)
      .Arg("configs_tried", tried)
      .Arg("best_us", best.estimate.time_us);

  // Phase boundary 2: the chosen program — per-kernel SMG build, slicing
  // and memory-plan legality, plus inter-kernel dependency order against
  // the source graph. A violation of the tuned result is a compiler bug.
  if (options_.verify != VerifyMode::kOff) {
    DiagnosticReport report = VerifyCompiledProgram(best.program, graph, rc_);
    if (!report.ok()) {
      return report.ToStatus(StatusCode::kInternal);
    }
    for (const Diagnostic& d : report.diagnostics()) {
      SF_LOG(Warning) << d.ToString();
    }
  }
  return best;
}

StatusOr<CompiledModel> Compiler::CompileModel(const ModelGraph& model) {
  ScopedSpan model_span("compiler.compile_model");
  model_span.Arg("model", model.config.name)
      .Arg("subprograms", static_cast<std::int64_t>(model.subprograms.size()));
  CompiledModel out;
  std::map<std::uint64_t, size_t> compiled_index;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = sub.graph.StructuralHash();
    auto it = compiled_index.find(key);
    if (it == compiled_index.end()) {
      SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, Compile(sub.graph));
      out.compile_time.slicing_ms += compiled.compile_time.slicing_ms;
      out.compile_time.enum_cfg_ms += compiled.compile_time.enum_cfg_ms;
      out.compile_time.tuning_s += compiled.compile_time.tuning_s;
      compiled_index.emplace(key, out.unique_subprograms.size());
      out.unique_subprograms.push_back(std::move(compiled));
      it = compiled_index.find(key);
    } else {
      ++out.cache_hits;
      SF_COUNTER_ADD("compiler.cache_hits", 1);
    }
    out.total += out.unique_subprograms[it->second].estimate.Scaled(sub.repeat);
  }
  model_span.Arg("cache_hits", out.cache_hits).Arg("total_us", out.total.time_us);
  out.metrics = MetricsRegistry::Global().Snapshot();
  return out;
}

void Compiler::RecordFusionPattern(const Graph& kernel_graph) {
  int a2o_ops = 0;
  bool has_ci = false;
  bool has_mi = false;
  for (const Op& op : kernel_graph.ops()) {
    if (op.kind == OpKind::kMatMul || op.kind == OpKind::kReduce) {
      ++a2o_ops;
    }
    if (op.compute_intensive()) {
      has_ci = true;
    } else {
      has_mi = true;
    }
  }
  if (a2o_ops < 2) {
    return;  // Table 6 counts fused subgraphs with >= 2 All-to-Ones
  }
  std::uint64_t topo = kernel_graph.TopologyHash();
  if (seen_patterns_.count(topo) > 0) {
    return;
  }
  seen_patterns_.emplace(topo, true);
  ++fusion_stats_.total;
  if (has_ci && has_mi) {
    ++fusion_stats_.ci_and_mi;
  } else if (has_ci) {
    ++fusion_stats_.ci_only;
  } else {
    ++fusion_stats_.mi_only;
  }
}

}  // namespace spacefusion
