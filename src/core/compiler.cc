#include "src/core/compiler.h"

#include "src/core/engine.h"

namespace spacefusion {

Compiler::Compiler(CompileOptions options)
    : engine_(std::make_unique<CompilerEngine>(std::move(options))) {}

Compiler::Compiler(Compiler&&) noexcept = default;
Compiler& Compiler::operator=(Compiler&&) noexcept = default;
Compiler::~Compiler() = default;

const CompileOptions& Compiler::options() const { return engine_->options(); }

StatusOr<CompiledSubprogram> Compiler::Compile(const Graph& graph) {
  return engine_->Compile(graph);
}

StatusOr<CompiledModel> Compiler::CompileModel(const ModelGraph& model) {
  return engine_->CompileModel(model);
}

FusionPatternStats Compiler::fusion_stats() const { return engine_->fusion_stats(); }

}  // namespace spacefusion
