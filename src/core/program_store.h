// The persistent program cache: compiled subprograms as versioned,
// checksummed blobs on disk, so a restarted process (e.g. a restarted
// sf-serve daemon) warms its in-memory program cache from SPACEFUSION_CACHE_DIR
// instead of re-tuning.
//
// Blob anatomy (all little-endian, see src/support/binary_io.h):
//
//   "SFPC" | u32 schema version | u64 FNV-1a of payload | payload
//
// where the payload carries the full cache-key context — architecture name,
// options digest, graph fingerprint, canonical graph form — followed by the
// CompiledSubprogram itself. The checksum is verified before the payload is
// parsed, the schema version before that, and the key context is compared
// against the requesting compile after parsing: a mismatch marks the entry
// *stale* (options or code drifted; silently recompile cold), distinct from
// *corrupt* (bit rot, truncation, partial write).
//
// CompiledSubprogram::request_id is deliberately not persisted: it names the
// request that produced the result for one caller, is rewritten on every
// cache hit anyway, and omitting it keeps serialization canonical
// (decode + re-encode reproduces the blob byte for byte). Similarly,
// CompiledModel's process-wide MetricsSnapshot and merged CompileReport are
// observability of one past process and are not serialized.
#ifndef SPACEFUSION_SRC_CORE_PROGRAM_STORE_H_
#define SPACEFUSION_SRC_CORE_PROGRAM_STORE_H_

#include <cstdint>
#include <string>

#include "src/core/compiler.h"
#include "src/support/binary_io.h"

namespace spacefusion {

void SerializeCompiledSubprogram(const CompiledSubprogram& sub, ByteWriter* w);
Status DeserializeCompiledSubprogram(ByteReader* r, CompiledSubprogram* sub);

// CompiledModel minus `metrics` and `report` (see file comment).
void SerializeCompiledModel(const CompiledModel& model, ByteWriter* w);
Status DeserializeCompiledModel(ByteReader* r, CompiledModel* model);

inline constexpr char kProgramBlobMagic[4] = {'S', 'F', 'P', 'C'};
// v2 adds the shape-bucket tag to the payload key context. v1 blobs still
// decode (bucket reads back empty), so a pre-bucket cache keeps serving
// shape-agnostic compiles and goes stale — a silent cold fallback — only
// when a bucketed compile asks for it.
inline constexpr std::uint32_t kProgramBlobSchemaVersion = 2;

// One cache entry with its full key context.
struct PersistedProgram {
  std::string arch;                  // GpuArch::name of the compiling options
  std::uint64_t options_digest = 0;  // CompileOptionsDigest
  std::uint64_t fingerprint = 0;     // engine fingerprint of the graph
  std::string canonical;             // Graph::CanonicalForm of the graph
  std::string bucket;                // CompileOptions::shape_bucket ("" = none)
  CompiledSubprogram compiled;
};

// Frames `program` as a magic/version/checksum blob.
std::string EncodePersistedProgram(const PersistedProgram& program);

// Inverse of EncodePersistedProgram, built for hostile bytes: returns
// kUnsupported for schema versions from the future and kDataLoss for
// everything else that is wrong (bad magic, checksum mismatch, truncation,
// invalid payload, trailing bytes). Never crashes.
Status DecodePersistedProgram(const std::string& bytes, PersistedProgram* program);

// A directory of EncodePersistedProgram blobs, one file per
// (fingerprint, options digest) pair. Writes are atomic (write-tmp-then-
// rename via AtomicWriteFile) so a crashed or concurrent writer can never
// leave a partially-written entry where a reader finds it.
class PersistentProgramCache {
 public:
  enum class LoadResult {
    kHit,      // entry found, key context matches, *out filled
    kMiss,     // no entry on disk
    kStale,    // entry decodes but was written for a different key context
    kCorrupt,  // entry fails magic/version/checksum/payload validation
  };

  explicit PersistentProgramCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  // "<dir>/<fingerprint hex>-<digest hex>.sfpc"
  std::string EntryPath(std::uint64_t fingerprint, std::uint64_t digest) const;

  // Best-effort load; everything except kHit leaves *out untouched and, for
  // kStale/kCorrupt, puts a human-readable reason in *detail when non-null.
  // `bucket` is the requesting compile's shape bucket ("" = shape-agnostic);
  // an entry written for a different bucket is stale even if every other
  // key component matches.
  LoadResult Load(std::uint64_t fingerprint, std::uint64_t digest, const std::string& arch,
                  const std::string& canonical, CompiledSubprogram* out,
                  std::string* detail = nullptr, const std::string& bucket = "") const;

  Status Store(std::uint64_t fingerprint, std::uint64_t digest, const std::string& arch,
               const std::string& canonical, const CompiledSubprogram& compiled,
               const std::string& bucket = "") const;

 private:
  std::string dir_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_PROGRAM_STORE_H_
