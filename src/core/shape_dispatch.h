// Runtime shape dispatch: routing a request shape to its bucket's program.
//
// CompileModelForShape produces one compiled program set per *bucket*; this
// layer holds those results in a ShapeDispatchTable and executes an exact
// request shape against them. RunBucketedSubprogram pads the exact-shape
// inputs to the bucket extents (per the factory's SubprogramLayouts), runs
// the bucket's compiled schedule through the interpreter or the JIT, and
// slices the outputs back to the exact shape — so both executors serve any
// shape in a compiled bucket without a fresh compile. The differential suite
// asserts the dispatched result against a direct compile at the exact shape.
#ifndef SPACEFUSION_SRC_CORE_SHAPE_DISPATCH_H_
#define SPACEFUSION_SRC_CORE_SHAPE_DISPATCH_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/exec/jit_executor.h"
#include "src/graph/shape_bucket.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

// How a dispatched subprogram executes. kJit uses `jit` when provided (e.g.
// a JitExecutor sharing the engine's prewarmed kernel cache), else the
// process-wide executor behind RunScheduledProgramWithBackend.
struct BucketRunOptions {
  ExecBackend backend = ExecBackend::kInterpret;
  JitExecutor* jit = nullptr;
};

// Bucket label -> compiled bucket programs. Thread-safe; entries are stable
// once added (Route/EntryFor pointers stay valid across later Adds).
class ShapeDispatchTable {
 public:
  // One compiled bucket plus the subprogram -> unique-program index map
  // (CompileModel dedupes repeated subprograms; dispatch must follow the
  // same first-seen StructuralHash order to find each subprogram's program).
  struct Entry {
    ShapeCompileResult result;
    std::vector<size_t> sub_to_unique;
  };

  explicit ShapeDispatchTable(BucketingPolicy policy = BucketingPolicy::FromEnv())
      : policy_(std::move(policy)) {}

  // Registers `result` under its bucket key, replacing any previous entry
  // for the same bucket. Fails when the compiled programs cannot be aligned
  // with the bucketed model's subprograms.
  Status Add(ShapeCompileResult result);

  // The entry serving `shape` under this table's policy, or nullptr when
  // that bucket has not been added.
  const Entry* Route(const ShapeKey& shape) const;
  // The entry compiled exactly at `bucket`, or nullptr.
  const Entry* EntryFor(const ShapeKey& bucket) const;

  // Labels of every bucket in the table, ascending.
  std::vector<std::string> Buckets() const;

  const BucketingPolicy& policy() const { return policy_; }

 private:
  BucketingPolicy policy_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_ SF_GUARDED_BY(mu_);
};

// Executes subprogram `sub_index` of `entry` at the exact request shape:
// exact inputs (indexed by `exact`'s graph tensor ids, as MakeGraphInputs
// lays them out) are padded to the bucket extents, the bucket's compiled
// program runs, and the outputs are sliced back into *exact_outputs at the
// exact graph's output ids (mirroring RunScheduledProgram's contract).
//
// `exact` must come from BuildModelBucketed at the request shape (identity
// policy) — the factory guarantees tensor-id correspondence with the bucket
// graphs, which is what makes id-indexed padding sound.
Status RunBucketedSubprogram(const ShapeDispatchTable::Entry& entry, size_t sub_index,
                             const BucketedModel& exact, const TensorEnv& exact_inputs,
                             TensorEnv* exact_outputs, const BucketRunOptions& run = {});

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_SHAPE_DISPATCH_H_
