#include "src/core/model_runner.h"

namespace spacefusion {

std::optional<ExecutionReport> EstimateGraphWithBaseline(const Graph& graph,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch) {
  if (!baseline.Supports(graph, arch)) {
    return std::nullopt;
  }
  AddressMap addresses;
  std::vector<KernelSpec> kernels = baseline.Plan(graph, arch, &addresses);
  CostModel cost(arch);
  return cost.Estimate(kernels);
}

std::optional<ExecutionReport> EstimateModelWithBaseline(const ModelGraph& model,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch) {
  ExecutionReport total;
  CostModel cost(arch);
  for (const Subprogram& sub : model.subprograms) {
    if (!baseline.Supports(sub.graph, arch)) {
      return std::nullopt;
    }
    AddressMap addresses;
    std::vector<KernelSpec> kernels = baseline.Plan(sub.graph, arch, &addresses);
    total += cost.Estimate(kernels).Scaled(sub.repeat);
  }
  return total;
}

StatusOr<ExecutionReport> EstimateGraphWithSpaceFusion(const Graph& graph, const GpuArch& arch) {
  Compiler compiler{CompileOptions(arch)};
  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, compiler.Compile(graph));
  return compiled.estimate;
}

ExecutionReport SimulateMemory(const std::vector<KernelSpec>& kernels, const GpuArch& arch) {
  MemorySim sim(arch);
  return sim.Run(kernels);
}

}  // namespace spacefusion
