#include "src/core/model_runner.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace spacefusion {

std::optional<ExecutionReport> EstimateGraphWithBaseline(const Graph& graph,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch) {
  ScopedSpan span("runner.estimate_baseline", "runner");
  span.Arg("graph", graph.name()).Arg("baseline", baseline.name());
  if (!baseline.Supports(graph, arch)) {
    return std::nullopt;
  }
  AddressMap addresses;
  std::vector<KernelSpec> kernels = baseline.Plan(graph, arch, &addresses);
  CostModel cost(arch);
  return cost.Estimate(kernels);
}

std::optional<ExecutionReport> EstimateModelWithBaseline(const ModelGraph& model,
                                                         const Baseline& baseline,
                                                         const GpuArch& arch) {
  ScopedSpan span("runner.estimate_model_baseline", "runner");
  span.Arg("model", model.config.name).Arg("baseline", baseline.name());
  ExecutionReport total;
  CostModel cost(arch);
  for (const Subprogram& sub : model.subprograms) {
    if (!baseline.Supports(sub.graph, arch)) {
      return std::nullopt;
    }
    AddressMap addresses;
    std::vector<KernelSpec> kernels = baseline.Plan(sub.graph, arch, &addresses);
    total += cost.Estimate(kernels).Scaled(sub.repeat);
  }
  return total;
}

StatusOr<CompiledModel> CompileModelWithSpaceFusion(const ModelGraph& model,
                                                    const CompileOptions& options,
                                                    CompilerEngine* engine) {
  ScopedSpan span("runner.compile_model", "runner");
  span.Arg("model", model.config.name);
  if (engine != nullptr) {
    return engine->CompileModel(model, options);
  }
  CompilerEngine local{EngineOptions(options)};
  return local.CompileModel(model);
}

StatusOr<CompiledSubprogram> CompileGraphWithSpaceFusion(const Graph& graph,
                                                         const CompileOptions& options,
                                                         CompilerEngine* engine) {
  ScopedSpan span("runner.compile_graph", "runner");
  span.Arg("graph", graph.name());
  if (engine != nullptr) {
    return engine->Compile(graph, options);
  }
  CompilerEngine local{EngineOptions(options)};
  return local.Compile(graph);
}

StatusOr<ExecutionReport> EstimateGraphWithSpaceFusion(const Graph& graph, const GpuArch& arch) {
  ScopedSpan span("runner.estimate_spacefusion", "runner");
  span.Arg("graph", graph.name());
  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled,
                      CompileGraphWithSpaceFusion(graph, CompileOptions(arch)));
  return compiled.estimate;
}

ExecutionReport SimulateMemory(const std::vector<KernelSpec>& kernels, const GpuArch& arch) {
  ScopedSpan span("runner.simulate_memory", "runner");
  span.Arg("kernels", static_cast<std::int64_t>(kernels.size()));
  MemorySim sim(arch);
  return sim.Run(kernels);
}

}  // namespace spacefusion
