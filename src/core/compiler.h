// SpaceFusion compiler facade — the public entry point (paper Fig. 9).
//
// Program pre-processing segments a model into subprograms (done by the
// model builders), builds one fused SMG per subprogram, then alternates
// between resource-aware slicing and SMG partitioning until every SMG has a
// schedule; the auto-tuner measures the enumerated configurations on the
// GPU simulator and the best schedules are lowered to kernels.
#ifndef SPACEFUSION_SRC_CORE_COMPILER_H_
#define SPACEFUSION_SRC_CORE_COMPILER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/models.h"
#include "src/obs/metrics.h"
#include "src/schedule/pipeline.h"
#include "src/sim/cost_cache.h"
#include "src/sim/cost_model.h"
#include "src/tuning/tuner.h"
#include "src/verify/verifier.h"

namespace spacefusion {

struct CompileOptions {
  GpuArch arch;
  // Ablation toggles (paper Sec. 6.4):
  //  * enable_temporal_slicing=false               -> Base(SS) / Base+AS
  //  * enable_auto_scheduling=false (expert cfgs)  -> Base(SS) / Base+TS
  bool enable_temporal_slicing = true;
  bool enable_auto_scheduling = true;
  // Static IR verification at phase boundaries (src/verify): input graphs
  // are checked at compile entry and the chosen program at compile exit;
  // kFull additionally checks every candidate program and enumerated
  // config. Defaults to SPACEFUSION_VERIFY from the environment, else phase.
  VerifyMode verify = VerifyModeFromEnv();
  SearchOptions search;
  TunerOptions tuner;

  CompileOptions();  // defaults to A100
  explicit CompileOptions(GpuArch a) : arch(std::move(a)) {}
};

// Compile-time breakdown of one subprogram (Table 4's columns). The
// wall-clock columns are derived from the trace spans recorded during the
// compile (a PhaseAccumulator sums the "compiler.pipeline" and
// "search.enum_cfg" spans), not from hand-threaded stopwatches, so they
// stay consistent with what SPACEFUSION_TRACE captures.
struct CompileTimeBreakdown {
  double slicing_ms = 0.0;    // TS.getPriorDim + TS.slice + SS.getDims + SS.slice
  double enum_cfg_ms = 0.0;   // search-space enumeration
  double tuning_s = 0.0;      // emulated measurement time (dominates)
  double total_s() const { return tuning_s + (slicing_ms + enum_cfg_ms) * 1e-3; }
};

struct CompiledSubprogram {
  ScheduledProgram program;          // tuned kernels, in execution order
  std::vector<KernelSpec> kernels;   // lowered specs
  ExecutionReport estimate;          // simulator cost of one execution
  CompileTimeBreakdown compile_time;
  TuningStats tuning;
  int candidate_programs = 1;        // Sec. 5.3 alternatives explored
};

struct CompiledModel {
  // One entry per *unique* subprogram (repetitions compile once).
  std::vector<CompiledSubprogram> unique_subprograms;
  // Execution estimate of the whole model (repeat counts expanded).
  ExecutionReport total;
  CompileTimeBreakdown compile_time;
  int cache_hits = 0;  // repeated subprograms served from the compile cache
  // Process-wide metrics, snapshotted when this model finished compiling
  // (cumulative across every compile the process has run so far).
  MetricsSnapshot metrics;
};

// Distinct fusion patterns discovered across compilations (Table 6).
struct FusionPatternStats {
  int total = 0;
  int ci_only = 0;
  int mi_only = 0;
  int ci_and_mi = 0;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options);

  const CompileOptions& options() const { return options_; }

  // Compiles one subprogram (with compile-cache lookup).
  StatusOr<CompiledSubprogram> Compile(const Graph& graph);

  // Compiles a whole model; repeated subprograms are compiled once.
  StatusOr<CompiledModel> CompileModel(const ModelGraph& model);

  // Fused subgraphs with >=2 All-to-One mappings seen so far, deduplicated
  // by operator topology (Table 6's counting rule).
  FusionPatternStats fusion_stats() const { return fusion_stats_; }

 private:
  StatusOr<CompiledSubprogram> CompileUncached(const Graph& graph);
  void RecordFusionPattern(const Graph& kernel_graph);

  CompileOptions options_;
  ResourceConfig rc_;
  CostModel cost_;
  // Memoizes per-config cost evaluations across kernels, candidates, and
  // subprograms of this compiler (hit/miss counters: cost_cache.*).
  CostCache cost_cache_;
  std::map<std::uint64_t, CompiledSubprogram> cache_;
  FusionPatternStats fusion_stats_;
  std::map<std::uint64_t, bool> seen_patterns_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_COMPILER_H_
