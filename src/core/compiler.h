// SpaceFusion compiler facade — the public entry point (paper Fig. 9).
//
// Program pre-processing segments a model into subprograms (done by the
// model builders), builds one fused SMG per subprogram, then alternates
// between resource-aware slicing and SMG partitioning until every SMG has a
// schedule; the auto-tuner measures the enumerated configurations on the
// GPU simulator and the best schedules are lowered to kernels.
//
// The compile pipeline itself lives in src/pass (a PassManager over a
// CompilationState) and is served by a CompilerEngine (src/core/engine.h):
// this class is a thin facade owning one private engine, so each Compiler
// keeps its own program cache and fusion statistics — and is safe to call
// from several threads at once, the engine guards its shared state.
#ifndef SPACEFUSION_SRC_CORE_COMPILER_H_
#define SPACEFUSION_SRC_CORE_COMPILER_H_

#include <memory>
#include <vector>

#include "src/graph/models.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/pass/pass.h"
#include "src/schedule/pipeline.h"
#include "src/sim/cost_cache.h"
#include "src/sim/cost_model.h"
#include "src/tuning/tuner.h"
#include "src/verify/verifier.h"

namespace spacefusion {

class CompilerEngine;

// CompileOptions, CompileTimeBreakdown, CompiledSubprogram, and
// FusionPatternStats moved to src/pass/pass.h (the pass layer owns the
// compile-request vocabulary); this header re-exports them via its include.

struct CompiledModel {
  // One entry per *unique* subprogram (repetitions compile once).
  std::vector<CompiledSubprogram> unique_subprograms;
  // Execution estimate of the whole model (repeat counts expanded).
  ExecutionReport total;
  CompileTimeBreakdown compile_time;
  int cache_hits = 0;  // repeated subprograms served from the compile cache
  // Process-wide metrics, snapshotted when this model finished compiling
  // (cumulative across every compile the process has run so far).
  MetricsSnapshot metrics;
  // Merged observability report of this model's compile: per-pass timings
  // summed by pass name across the unique-subprogram requests, tuning
  // funnel and memory summary folded the same way. Carried here (not
  // emitted to sinks — the per-request reports already were) so callers can
  // inspect one compile without installing a ReportSink.
  CompileReport report;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options);
  Compiler(Compiler&&) noexcept;
  Compiler& operator=(Compiler&&) noexcept;
  ~Compiler();

  const CompileOptions& options() const;

  // Compiles one subprogram (with compile-cache lookup).
  StatusOr<CompiledSubprogram> Compile(const Graph& graph);

  // Compiles a whole model; repeated subprograms are compiled once.
  StatusOr<CompiledModel> CompileModel(const ModelGraph& model);

  // Fused subgraphs with >=2 All-to-One mappings seen so far, deduplicated
  // by operator topology (Table 6's counting rule).
  FusionPatternStats fusion_stats() const;

  // The engine serving this compiler (owned).
  CompilerEngine& engine() { return *engine_; }

 private:
  std::unique_ptr<CompilerEngine> engine_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_COMPILER_H_
