// CompilerEngine: the concurrently-callable compile service behind the
// Compiler facade.
//
// The engine owns what a single compile request must not: the cross-model
// structural program cache, the per-options-digest CostCaches, and the
// Table 6 fusion-pattern recorder. Each Compile/CompileModel request builds
// a CompilationState, runs the BuildCompilePassList pass list through a
// PassManager, and derives the CompileTimeBreakdown from the pass timings.
//
// Program cache key anatomy: (canonical graph fingerprint, options digest).
// The fingerprint is Graph::StructuralHash (name-insensitive) by default —
// overridable per engine for tests — and the options digest covers the
// architecture plus every compile-affecting option, so A100 and V100
// programs never alias. A fingerprint hit is confirmed by comparing
// Graph::CanonicalForm against the cached entry before it is served; a
// mismatch is a counted collision and compiles fresh into the same bucket.
#ifndef SPACEFUSION_SRC_CORE_ENGINE_H_
#define SPACEFUSION_SRC_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/jit_cache.h"
#include "src/core/compiler.h"
#include "src/core/program_store.h"
#include "src/graph/models.h"
#include "src/graph/shape_bucket.h"
#include "src/obs/report.h"
#include "src/pass/pass.h"
#include "src/sim/cost_cache.h"
#include "src/support/thread_annotations.h"

namespace spacefusion {

// Digest of every compile-affecting field of the options, including the
// architecture. Two options with equal digests produce identical programs
// for identical graphs.
std::uint64_t CompileOptionsDigest(const CompileOptions& options);

// The SPACEFUSION_CACHE_DIR environment variable, read fresh on every call
// ("" when unset) so tests and daemons can repoint it between engines.
std::string CacheDirFromEnv();

// What CompileModelForShape returns: the bucket's compiled programs plus
// everything runtime dispatch needs to serve the exact request shape.
struct ShapeCompileResult {
  // Graphs + padding layouts at the bucket shape, exact + bucket configs.
  BucketedModel bucketed;
  // One compiled program per unique bucket subprogram. The model-level
  // report carries shape ( = the request), bucket, bucket_hit and
  // transfer_seeded.
  CompiledModel compiled;
  // True when every subprogram was served from a cache (in-memory or
  // persistent): the request ran zero tuner invocations.
  bool bucket_hit = false;
  // Admitted configs the tuner measured first because a neighboring
  // bucket's prior named them (0 on warm requests — nothing was tuned).
  std::int64_t transfer_seeded = 0;
};

struct EngineOptions {
  // Default options for Compile/CompileModel calls without per-request ones.
  CompileOptions compile;
  // Cross-model structural program cache (engine.cache.* metrics).
  bool enable_program_cache = true;
  // Directory of the persistent program cache; defaults to
  // SPACEFUSION_CACHE_DIR (empty = in-memory cache only). Requires
  // enable_program_cache. Cold compiles are stored as checksummed blobs and
  // a later engine — typically a restarted daemon — serves them as
  // "persistent_hit" without re-tuning; stale or corrupt entries silently
  // fall back to a cold compile (engine.cache.persistent_* metrics).
  std::string cache_dir = CacheDirFromEnv();
  // Graph fingerprint for the program-cache key. Defaults to
  // Graph::StructuralHash; tests override it to force collisions onto the
  // canonical-form comparison path.
  std::function<std::uint64_t(const Graph&)> fingerprint_fn;
  // Race analysis run on every cold compile before it is admitted into the
  // persistent cache (src/analysis): a program with SFV06xx findings is
  // never stored (engine.cache.analysis_rejected), so a restarted daemon
  // cannot warm-serve a racy schedule. Defaults to AnalyzeCompiledProgram;
  // tests override it to force rejections.
  std::function<DiagnosticReport(const ScheduledProgram&, const Graph&)> admission_analysis;
  // Receives the CompileReport of every finished request (cold, cache hit,
  // or failed). Non-owning; must outlive the engine and be thread-safe.
  // Independent of (and in addition to) the SPACEFUSION_REPORT_DIR sink.
  ReportSink* report_sink = nullptr;
  // Prewarm the native-kernel JIT on every served program (cold, cache
  // hit, or persistent hit): each kernel is emitted to C++ and pushed
  // through the JIT kernel cache, so by the time an executor asks for it
  // the shared object is already built (or was already on disk — a warm
  // daemon restart performs zero toolchain invocations). Failures are
  // logged and counted, never surfaced: execution falls back to the
  // interpreter per kernel. Results land in CompileReport::jit_*.
  bool prewarm_jit = false;
  // Kernel-cache configuration for prewarm_jit. An empty dir defaults to
  // "<cache_dir>/kernels" when cache_dir is set (kernels persist next to
  // the .sfpc program cache), else KernelCacheDirFromEnv().
  JitCacheOptions jit_cache;
  // Additionally record engine/pass metrics under per-request labeled names
  // (engine.cache.hits{request_id="req-000001"}, ...) so concurrent
  // compiles stay attributable in the OpenMetrics exposition. Off by
  // default: every request adds new time series, so enable only where the
  // request volume is bounded (tests, short-lived tools).
  bool label_metrics_by_request = false;

  EngineOptions() = default;
  explicit EngineOptions(CompileOptions c) : compile(std::move(c)) {}
};

class CompilerEngine {
 public:
  struct CacheStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t collisions = 0;  // fingerprint hit, canonical-form mismatch
    // Persistent-cache traffic (zero unless a cache_dir is configured).
    std::int64_t persistent_hits = 0;     // served from disk, no compile ran
    std::int64_t persistent_stale = 0;    // entry decoded but keys mismatched
    std::int64_t persistent_corrupt = 0;  // entry failed checksum/validation
    std::int64_t analysis_rejected = 0;   // race analysis refused persistence
    // Shape-bucket traffic (CompileModelForShape requests only).
    std::int64_t bucket_hits = 0;      // served with zero tuner invocations
    std::int64_t bucket_misses = 0;    // at least one subprogram tuned cold
    std::int64_t transfer_seeded = 0;  // configs seeded from a neighbor bucket
  };

  explicit CompilerEngine(EngineOptions options);
  explicit CompilerEngine(CompileOptions options);

  const CompileOptions& options() const { return options_.compile; }

  // Compiles one subprogram. Safe to call from several threads at once;
  // structurally repeated graphs (same options digest) are served from the
  // program cache.
  StatusOr<CompiledSubprogram> Compile(const Graph& graph);
  StatusOr<CompiledSubprogram> Compile(const Graph& graph, const CompileOptions& options);

  // Compiles a whole model; repeated subprograms are compiled once.
  // CompiledModel::cache_hits counts the intra-model repeats (the paper's
  // compile-once statistic); cross-model reuse shows up in engine.cache.*.
  StatusOr<CompiledModel> CompileModel(const ModelGraph& model);
  StatusOr<CompiledModel> CompileModel(const ModelGraph& model, const CompileOptions& options);

  // Shape-bucketed compile: builds `kind` at the bucket `policy` (default:
  // BucketingPolicy::FromEnv()) assigns to `shape`, compiles one program per
  // unique bucket subprogram with the cache/persistent keys tagged by the
  // bucket, and seeds the tuner's measurement order with the admitted
  // configs of the nearest already-tuned bucket. A second shape falling into
  // an already-compiled bucket is a pure cache hit: zero tuner invocations.
  StatusOr<ShapeCompileResult> CompileModelForShape(ModelKind kind, const ShapeKey& shape);
  StatusOr<ShapeCompileResult> CompileModelForShape(ModelKind kind, const ShapeKey& shape,
                                                    const CompileOptions& options);
  StatusOr<ShapeCompileResult> CompileModelForShape(ModelKind kind, const ShapeKey& shape,
                                                    const CompileOptions& options,
                                                    const BucketingPolicy& policy);

  // Fused subgraphs with >=2 All-to-One mappings seen so far, deduplicated
  // by operator topology (Table 6's counting rule), across every request
  // this engine served.
  FusionPatternStats fusion_stats() const { return fusion_.stats(); }

  CacheStats cache_stats() const;
  // Number of cached programs (across all buckets).
  std::int64_t program_cache_size() const;

  // The engine's JIT kernel cache; null unless prewarm_jit is on. Shared
  // with executors (JitExecutor's shared-cache constructor) so serving
  // runs exactly the kernels the engine prewarmed.
  JitKernelCache* jit_cache() const { return jit_cache_.get(); }

 private:
  struct CacheEntry {
    std::uint64_t digest = 0;
    std::string canonical;
    CompiledSubprogram compiled;
  };

  std::uint64_t Fingerprint(const Graph& graph) const;
  // CostCache keys are (kernel signature, config) — arch-blind — so each
  // options digest gets its own cache.
  CostCache* CostCacheFor(std::uint64_t digest);
  // One engine request: cache lookup, compile on miss, and the request's
  // CompileReport (written into *report and emitted to the sinks).
  StatusOr<CompiledSubprogram> CompileWithReport(const Graph& graph,
                                                 const CompileOptions& options,
                                                 const std::string& model_name,
                                                 CompileReport* report);
  StatusOr<CompiledSubprogram> CompileUncached(const Graph& graph, const CompileOptions& options,
                                               std::uint64_t digest,
                                               const std::string& request_id,
                                               CompileReport* report);
  // Forwards a finished report to the options sink and the
  // SPACEFUSION_REPORT_DIR sink (when set).
  void EmitReport(const CompileReport& report);
  // prewarm_jit: emit + build every kernel of `result` through the JIT
  // cache, recording build/cached counts into *report. Best effort.
  void PrewarmJit(const CompiledSubprogram& result, CompileReport* report);
  // Process-wide deterministic request ids: "req-000001", "req-000002", ...
  static std::string NextRequestId();

  EngineOptions options_;
  std::uint64_t default_digest_ = 0;
  // Null unless options_.cache_dir names a directory.
  std::unique_ptr<PersistentProgramCache> persistent_;
  // Null unless options_.prewarm_jit is on.
  std::unique_ptr<JitKernelCache> jit_cache_;

  mutable Mutex cache_mu_;
  std::map<std::uint64_t, std::vector<CacheEntry>> cache_ SF_GUARDED_BY(cache_mu_);
  CacheStats stats_ SF_GUARDED_BY(cache_mu_);

  Mutex cost_caches_mu_;
  std::map<std::uint64_t, std::unique_ptr<CostCache>> cost_caches_ SF_GUARDED_BY(cost_caches_mu_);

  // Cross-bucket config-transfer store: shape-free kernel signature ->
  // per-bucket admitted configs (best measured first). Filled by cold
  // bucketed compiles, read by the tuner prior of later buckets. In-memory
  // only: a restarted daemon rebuilds it as buckets compile cold (warm
  // requests never tune, so they never need a prior).
  struct TransferEntry {
    ShapeKey bucket;
    std::vector<std::string> configs;
  };
  // The nearest tuned bucket's configs for `signature` (BucketDistance to
  // `bucket`, lexicographic label tie-break; the same bucket is skipped —
  // that case is a structural cache hit and never reaches the tuner).
  std::vector<std::string> TransferPriorFor(std::uint64_t signature, const ShapeKey& bucket) const;
  // Records every tuned kernel of `compiled` under `bucket`.
  void RecordTransferConfigs(const CompiledModel& compiled, const ShapeKey& bucket);

  mutable Mutex transfer_mu_;
  std::map<std::uint64_t, std::vector<TransferEntry>> transfer_ SF_GUARDED_BY(transfer_mu_);

  FusionPatternRecorder fusion_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_CORE_ENGINE_H_
