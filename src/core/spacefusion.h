// Umbrella header: the SpaceFusion public API.
//
// Typical use:
//
//   #include "src/core/spacefusion.h"
//
//   spacefusion::Graph mha = spacefusion::BuildMha(12, 512, 512, 64);
//   spacefusion::Compiler compiler{
//       spacefusion::CompileOptions(spacefusion::AmpereA100())};
//   auto compiled = compiler.Compile(mha);
//   // compiled->kernels: fused kernel launches
//   // compiled->estimate: simulated execution report
//
// Numerical validation:
//
//   spacefusion::TensorEnv env = spacefusion::MakeGraphInputs(mha, /*seed=*/1);
//   spacefusion::TensorEnv outputs;
//   spacefusion::RunScheduledProgram(compiled->program, mha, env, &outputs);
#ifndef SPACEFUSION_SRC_CORE_SPACEFUSION_H_
#define SPACEFUSION_SRC_CORE_SPACEFUSION_H_

#include "src/baselines/baseline.h"        // IWYU pragma: export
#include "src/core/compiler.h"             // IWYU pragma: export
#include "src/core/engine.h"               // IWYU pragma: export
#include "src/core/model_runner.h"         // IWYU pragma: export
#include "src/pass/pass.h"                 // IWYU pragma: export
#include "src/exec/schedule_executor.h"    // IWYU pragma: export
#include "src/graph/builder.h"             // IWYU pragma: export
#include "src/graph/models.h"              // IWYU pragma: export
#include "src/graph/subgraphs.h"           // IWYU pragma: export
#include "src/obs/metrics.h"               // IWYU pragma: export
#include "src/obs/trace.h"                 // IWYU pragma: export
#include "src/sim/arch.h"                  // IWYU pragma: export
#include "src/sim/memory_sim.h"            // IWYU pragma: export

#endif  // SPACEFUSION_SRC_CORE_SPACEFUSION_H_
