#include "src/core/engine.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace spacefusion {

namespace {

void MixInto(std::uint64_t* h, std::uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ULL;  // FNV prime
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void MixString(std::uint64_t* h, const std::string& s) {
  MixInto(h, s.size());
  for (char c : s) {
    MixInto(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
}

}  // namespace

std::uint64_t CompileOptionsDigest(const CompileOptions& options) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const GpuArch& arch = options.arch;
  MixString(&h, arch.name);
  MixInto(&h, static_cast<std::uint64_t>(arch.num_sms));
  MixInto(&h, DoubleBits(arch.fp16_tflops));
  MixInto(&h, static_cast<std::uint64_t>(arch.max_threads_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.max_blocks_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.smem_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.smem_per_block_max));
  MixInto(&h, static_cast<std::uint64_t>(arch.regfile_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.reg_per_block_max));
  MixInto(&h, static_cast<std::uint64_t>(arch.l1_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.l2_bytes));
  MixInto(&h, DoubleBits(arch.dram_gbps));
  MixInto(&h, DoubleBits(arch.l2_gbps));
  MixInto(&h, static_cast<std::uint64_t>(arch.cache_line_bytes));
  MixInto(&h, static_cast<std::uint64_t>(arch.l2_assoc));
  MixInto(&h, DoubleBits(arch.launch_overhead_us));

  MixInto(&h, options.enable_temporal_slicing ? 7u : 3u);
  MixInto(&h, options.enable_auto_scheduling ? 11u : 5u);
  MixInto(&h, static_cast<std::uint64_t>(options.verify));

  MixInto(&h, static_cast<std::uint64_t>(options.search.max_block));
  MixInto(&h, static_cast<std::uint64_t>(options.search.min_block));
  MixInto(&h, static_cast<std::uint64_t>(options.search.max_configs));
  MixInto(&h, options.search.prune_dominated ? 13u : 17u);

  MixInto(&h, DoubleBits(options.tuner.early_quit_alpha));
  MixInto(&h, static_cast<std::uint64_t>(options.tuner.warmup_runs));
  MixInto(&h, static_cast<std::uint64_t>(options.tuner.timed_runs));
  MixInto(&h, options.tuner.enable_early_quit ? 19u : 23u);
  MixInto(&h, static_cast<std::uint64_t>(static_cast<std::int64_t>(options.tuner.screen_top_k)));
  MixInto(&h, DoubleBits(options.tuner.screen_epsilon));
  return h;
}

CompilerEngine::CompilerEngine(EngineOptions options) : options_(std::move(options)) {
  default_digest_ = CompileOptionsDigest(options_.compile);
}

CompilerEngine::CompilerEngine(CompileOptions options)
    : CompilerEngine(EngineOptions(std::move(options))) {}

std::uint64_t CompilerEngine::Fingerprint(const Graph& graph) const {
  return options_.fingerprint_fn ? options_.fingerprint_fn(graph) : graph.StructuralHash();
}

CostCache* CompilerEngine::CostCacheFor(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(cost_caches_mu_);
  std::unique_ptr<CostCache>& cache = cost_caches_[digest];
  if (cache == nullptr) {
    cache = std::make_unique<CostCache>();
  }
  return cache.get();
}

StatusOr<CompiledSubprogram> CompilerEngine::Compile(const Graph& graph) {
  return Compile(graph, options_.compile);
}

StatusOr<CompiledSubprogram> CompilerEngine::Compile(const Graph& graph,
                                                     const CompileOptions& options) {
  const std::uint64_t digest =
      &options == &options_.compile ? default_digest_ : CompileOptionsDigest(options);
  std::uint64_t key = 0;
  std::string canonical;
  if (options_.enable_program_cache) {
    std::uint64_t fingerprint = Fingerprint(graph);
    key = 1469598103934665603ULL;
    MixInto(&key, fingerprint);
    MixInto(&key, digest);
    canonical = graph.CanonicalForm();
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      bool collided = false;
      for (const CacheEntry& entry : it->second) {
        if (entry.digest == digest && entry.canonical == canonical) {
          ++stats_.hits;
          SF_COUNTER_ADD("engine.cache.hits", 1);
          SF_COUNTER_ADD("compiler.cache_hits", 1);
          return entry.compiled;
        }
        collided = true;
      }
      if (collided) {
        ++stats_.collisions;
        SF_COUNTER_ADD("engine.cache.collisions", 1);
      }
    }
    ++stats_.misses;
    SF_COUNTER_ADD("engine.cache.misses", 1);
    SF_COUNTER_ADD("compiler.cache_misses", 1);
  } else {
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++stats_.misses;
    SF_COUNTER_ADD("engine.cache.misses", 1);
    SF_COUNTER_ADD("compiler.cache_misses", 1);
  }

  SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, CompileUncached(graph, options, digest));

  if (options_.enable_program_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    std::vector<CacheEntry>& bucket = cache_[key];
    bool present = false;
    for (const CacheEntry& entry : bucket) {
      if (entry.digest == digest && entry.canonical == canonical) {
        present = true;  // a concurrent request compiled it first
        break;
      }
    }
    if (!present) {
      bucket.push_back(CacheEntry{digest, std::move(canonical), compiled});
    }
  }
  return compiled;
}

StatusOr<CompiledSubprogram> CompilerEngine::CompileUncached(const Graph& graph,
                                                             const CompileOptions& options,
                                                             std::uint64_t digest) {
  ScopedSpan compile_span("compiler.compile");
  compile_span.Arg("graph", graph.name()).Arg("ops", static_cast<std::int64_t>(graph.ops().size()));
  SF_COUNTER_ADD("compiler.subprograms_compiled", 1);

  CostModel cost(options.arch);
  CompilationState state;
  state.graph = &graph;
  state.options = &options;
  state.rc = ResourceConfig::FromArch(options.arch);
  state.cost = &cost;
  state.cost_cache = CostCacheFor(digest);
  state.fusion = &fusion_;

  PassManager manager(BuildCompilePassList(options));
  SF_RETURN_IF_ERROR(manager.Run(&state));

  CompiledSubprogram best = std::move(state.best);
  // Table 4's wall-clock columns, rebuilt from the pass timings: the
  // enumeration column is exactly the "search.enum_cfg" span total, and the
  // slicing column is the rest of the scheduling passes (SMG build +
  // slicing/partitioning pipeline).
  double enum_ms = manager.SpanTotalMs("search.enum_cfg");
  double scheduling_ms = manager.PassMs("BuildSmg") + manager.PassMs("SlicingPipeline");
  best.compile_time.slicing_ms = std::max(0.0, scheduling_ms - enum_ms);
  best.compile_time.enum_cfg_ms = enum_ms;
  best.compile_time.tuning_s = state.total_tuning_s;
  best.tuning.configs_screened = state.configs_screened;
  best.tuning.configs_tried = state.configs_tried;
  best.tuning.best_time_us = best.estimate.time_us;
  best.tuning.simulated_tuning_seconds = state.total_tuning_s;
  compile_span.Arg("configs_screened", state.configs_screened)
      .Arg("configs_tried", state.configs_tried)
      .Arg("best_us", best.estimate.time_us);
  return best;
}

StatusOr<CompiledModel> CompilerEngine::CompileModel(const ModelGraph& model) {
  return CompileModel(model, options_.compile);
}

StatusOr<CompiledModel> CompilerEngine::CompileModel(const ModelGraph& model,
                                                     const CompileOptions& options) {
  ScopedSpan model_span("compiler.compile_model");
  model_span.Arg("model", model.config.name)
      .Arg("subprograms", static_cast<std::int64_t>(model.subprograms.size()));
  CompiledModel out;
  // Intra-request dedup: repeated subprograms of *this* model compile once
  // and count into CompiledModel::cache_hits (the paper's statistic).
  // Cross-request reuse happens inside Compile via the program cache.
  std::map<std::uint64_t, size_t> compiled_index;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = Fingerprint(sub.graph);
    auto it = compiled_index.find(key);
    if (it == compiled_index.end()) {
      SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled, Compile(sub.graph, options));
      out.compile_time.slicing_ms += compiled.compile_time.slicing_ms;
      out.compile_time.enum_cfg_ms += compiled.compile_time.enum_cfg_ms;
      out.compile_time.tuning_s += compiled.compile_time.tuning_s;
      compiled_index.emplace(key, out.unique_subprograms.size());
      out.unique_subprograms.push_back(std::move(compiled));
      it = compiled_index.find(key);
    } else {
      ++out.cache_hits;
      SF_COUNTER_ADD("compiler.cache_hits", 1);
    }
    out.total += out.unique_subprograms[it->second].estimate.Scaled(sub.repeat);
  }
  model_span.Arg("cache_hits", out.cache_hits).Arg("total_us", out.total.time_us);
  out.metrics = MetricsRegistry::Global().Snapshot();
  return out;
}

CompilerEngine::CacheStats CompilerEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

std::int64_t CompilerEngine::program_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::int64_t n = 0;
  for (const auto& [key, bucket] : cache_) {
    n += static_cast<std::int64_t>(bucket.size());
  }
  return n;
}

}  // namespace spacefusion
