#include "src/core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/codegen/cpp_codegen.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

void MixInto(std::uint64_t* h, std::uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ULL;  // FNV prime
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void MixString(std::uint64_t* h, const std::string& s) {
  MixInto(h, s.size());
  for (char c : s) {
    MixInto(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Verifier diagnostics travel inside the Status message as rendered lines
// ("SFV0103 [error] graph(m): ..."); lift them back into structured form
// for the report so sf-stats can bucket failures by code.
void ExtractDiagnostics(const std::string& status_message, CompileReport* report) {
  size_t pos = 0;
  while (pos < status_message.size()) {
    size_t end = status_message.find('\n', pos);
    if (end == std::string::npos) {
      end = status_message.size();
    }
    std::string line = status_message.substr(pos, end - pos);
    pos = end + 1;
    if (line.compare(0, 3, "SFV") != 0) {
      continue;
    }
    ReportDiagnostic diag;
    size_t space = line.find(' ');
    diag.code = line.substr(0, space);
    diag.severity = line.find("[warning]") != std::string::npos ? "warning" : "error";
    diag.message = std::move(line);
    if (diag.severity == "error") {
      ++report->verifier_errors;
    } else {
      ++report->verifier_warnings;
    }
    report->diagnostics.push_back(std::move(diag));
  }
}

// Tuning funnel + memory-plan summary of a finished subprogram. Used for
// cold compiles and cache hits alike (the cached entry carries its stats).
void FillResultSummary(const CompiledSubprogram& compiled, CompileReport* report) {
  report->configs_enumerated = compiled.tuning.configs_enumerated;
  report->configs_screened = compiled.tuning.configs_screened;
  report->configs_admitted = compiled.tuning.configs_tried;
  report->tuning_seconds = compiled.tuning.simulated_tuning_seconds;
  report->kernels = static_cast<int>(compiled.program.kernels.size());
  for (const SmgSchedule& kernel : compiled.program.kernels) {
    report->smem_bytes = std::max(report->smem_bytes, kernel.memory.smem_bytes);
    report->reg_bytes = std::max(report->reg_bytes, kernel.memory.reg_bytes);
  }
  report->modeled_time_us = compiled.estimate.time_us;
  report->transfer_seeded = compiled.tuning.configs_transfer_seeded;
}

void AddLabeledCounter(const char* base, const std::string& request_id) {
  MetricsRegistry::Global()
      .GetCounter(LabeledMetricName(base, "request_id", request_id))
      .Increment(1);
}

}  // namespace

std::uint64_t CompileOptionsDigest(const CompileOptions& options) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  const GpuArch& arch = options.arch;
  MixString(&h, arch.name);
  MixInto(&h, static_cast<std::uint64_t>(arch.num_sms));
  MixInto(&h, DoubleBits(arch.fp16_tflops));
  MixInto(&h, static_cast<std::uint64_t>(arch.max_threads_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.max_blocks_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.smem_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.smem_per_block_max));
  MixInto(&h, static_cast<std::uint64_t>(arch.regfile_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.reg_per_block_max));
  MixInto(&h, static_cast<std::uint64_t>(arch.l1_per_sm));
  MixInto(&h, static_cast<std::uint64_t>(arch.l2_bytes));
  MixInto(&h, DoubleBits(arch.dram_gbps));
  MixInto(&h, DoubleBits(arch.l2_gbps));
  MixInto(&h, static_cast<std::uint64_t>(arch.cache_line_bytes));
  MixInto(&h, static_cast<std::uint64_t>(arch.l2_assoc));
  MixInto(&h, DoubleBits(arch.launch_overhead_us));

  MixInto(&h, options.enable_temporal_slicing ? 7u : 3u);
  MixInto(&h, options.enable_auto_scheduling ? 11u : 5u);
  MixInto(&h, static_cast<std::uint64_t>(options.verify));

  MixInto(&h, static_cast<std::uint64_t>(options.search.max_block));
  MixInto(&h, static_cast<std::uint64_t>(options.search.min_block));
  MixInto(&h, static_cast<std::uint64_t>(options.search.max_configs));
  MixInto(&h, options.search.prune_dominated ? 13u : 17u);

  MixInto(&h, DoubleBits(options.tuner.early_quit_alpha));
  MixInto(&h, static_cast<std::uint64_t>(options.tuner.warmup_runs));
  MixInto(&h, static_cast<std::uint64_t>(options.tuner.timed_runs));
  MixInto(&h, options.tuner.enable_early_quit ? 19u : 23u);
  MixInto(&h, static_cast<std::uint64_t>(static_cast<std::int64_t>(options.tuner.screen_top_k)));
  MixInto(&h, DoubleBits(options.tuner.screen_epsilon));
  // tuner.transfer_prior is deliberately excluded (like `analyze`): a prior
  // reorders the modeled measurement schedule but never changes the selected
  // program, so cache keys are identical with or without one.
  if (!options.shape_bucket.empty()) {
    // Mixed only when set, so shape-agnostic digests are unchanged from the
    // pre-bucket format and existing caches stay warm.
    MixString(&h, options.shape_bucket);
  }
  return h;
}

std::string CacheDirFromEnv() {
  const char* dir = std::getenv("SPACEFUSION_CACHE_DIR");
  return dir != nullptr ? dir : "";
}

CompilerEngine::CompilerEngine(EngineOptions options) : options_(std::move(options)) {
  default_digest_ = CompileOptionsDigest(options_.compile);
  if (options_.enable_program_cache && !options_.cache_dir.empty()) {
    persistent_ = std::make_unique<PersistentProgramCache>(options_.cache_dir);
  }
  if (options_.prewarm_jit) {
    JitCacheOptions jit = options_.jit_cache;
    if (jit.dir.empty()) {
      jit.dir = !options_.cache_dir.empty() ? options_.cache_dir + "/kernels"
                                            : KernelCacheDirFromEnv();
    }
    jit_cache_ = std::make_unique<JitKernelCache>(std::move(jit));
  }
}

CompilerEngine::CompilerEngine(CompileOptions options)
    : CompilerEngine(EngineOptions(std::move(options))) {}

std::uint64_t CompilerEngine::Fingerprint(const Graph& graph) const {
  return options_.fingerprint_fn ? options_.fingerprint_fn(graph) : graph.StructuralHash();
}

CostCache* CompilerEngine::CostCacheFor(std::uint64_t digest) {
  MutexLock lock(cost_caches_mu_);
  std::unique_ptr<CostCache>& cache = cost_caches_[digest];
  if (cache == nullptr) {
    cache = std::make_unique<CostCache>();
  }
  return cache.get();
}

StatusOr<CompiledSubprogram> CompilerEngine::Compile(const Graph& graph) {
  return Compile(graph, options_.compile);
}

StatusOr<CompiledSubprogram> CompilerEngine::Compile(const Graph& graph,
                                                     const CompileOptions& options) {
  CompileReport report;
  return CompileWithReport(graph, options, /*model_name=*/"", &report);
}

std::string CompilerEngine::NextRequestId() {
  // Deterministic (no wall clock, no randomness): compiles stay bit-identical
  // run to run, and ids double as stable report file names.
  static std::atomic<std::int64_t> next{0};
  char buf[24];
  std::snprintf(buf, sizeof(buf), "req-%06lld",
                static_cast<long long>(next.fetch_add(1, std::memory_order_relaxed) + 1));
  return buf;
}

void CompilerEngine::EmitReport(const CompileReport& report) {
  if (options_.report_sink != nullptr) {
    options_.report_sink->Emit(report);
  }
  if (ReportSink* env_sink = EnvReportSink(); env_sink != nullptr) {
    env_sink->Emit(report);
  }
}

void CompilerEngine::PrewarmJit(const CompiledSubprogram& result, CompileReport* report) {
  if (jit_cache_ == nullptr) {
    return;
  }
  ScopedSpan span("engine.jit_prewarm");
  span.Arg("kernels", static_cast<std::int64_t>(result.program.kernels.size()));
  for (const SmgSchedule& kernel : result.program.kernels) {
    StatusOr<CppKernel> emitted = EmitCppKernel(kernel);
    if (!emitted.ok()) {
      SF_COUNTER_ADD("codegen.emit_failures", 1);
      SF_LOG(Warning) << "jit prewarm: cannot emit " << kernel.graph.name() << ": "
                      << emitted.status().message();
      FlightRecorder::Global().Record(
          report->request_id, "jit",
          StrCat("emit failed for ", kernel.graph.name(), ": ", emitted.status().message()));
      continue;
    }
    SF_COUNTER_ADD("codegen.kernels_emitted", 1);
    const auto build_start = std::chrono::steady_clock::now();
    StatusOr<JitKernelCache::Kernel> built = jit_cache_->GetOrBuild(emitted.value());
    if (!built.ok()) {
      // Best effort by contract: execution falls back to the interpreter
      // for this kernel, so a broken toolchain degrades speed, not service.
      SF_LOG(Warning) << "jit prewarm: " << built.status().message();
      FlightRecorder::Global().Record(report->request_id, "jit",
                                      StrCat("build failed: ", built.status().message()));
      continue;
    }
    if (built->built) {
      ++report->jit_kernels_built;
      report->jit_build_ms += MsSince(build_start);
      FlightRecorder::Global().Record(
          report->request_id, "jit",
          StrCat("built kernel ", emitted->symbol, " for ", kernel.graph.name()));
    } else {
      ++report->jit_kernels_cached;
      if (built->from_disk) {
        FlightRecorder::Global().Record(
            report->request_id, "jit",
            StrCat("kernel ", emitted->symbol, " warmed from disk cache"));
      }
    }
  }
}

StatusOr<CompiledSubprogram> CompilerEngine::CompileWithReport(const Graph& graph,
                                                               const CompileOptions& options,
                                                               const std::string& model_name,
                                                               CompileReport* report) {
  // Shared side of the obs state lock: a concurrent MetricsRegistry::Reset
  // or TraceSession start/stop waits for this request to finish instead of
  // tearing its metrics/spans in half. Never nested (CompileModel defers to
  // this method for each subprogram, one at a time).
  ObsCompileLock obs_lock;
  const auto request_start = std::chrono::steady_clock::now();
  const std::uint64_t digest =
      &options == &options_.compile ? default_digest_ : CompileOptionsDigest(options);
  const std::uint64_t fingerprint = Fingerprint(graph);
  report->request_id = NextRequestId();
  report->model = model_name;
  report->graph_fingerprint = fingerprint;
  report->options_digest = digest;
  // Subprogram graphs are built at the bucket shape, so at this level the
  // shape *is* the bucket; CompileModelForShape stamps the exact request
  // shape onto the model-level report.
  report->shape = options.shape_bucket;
  report->bucket = options.shape_bucket;
  FlightRecorder::Global().Record(
      report->request_id, "engine",
      StrCat("request start: graph ", graph.name(), ", ", graph.ops().size(), " op(s)"));

  std::uint64_t key = 0;
  std::string canonical;
  if (options_.enable_program_cache) {
    key = 1469598103934665603ULL;
    MixInto(&key, fingerprint);
    MixInto(&key, digest);
    canonical = graph.CanonicalForm();
    bool hit = false;
    bool collided = false;
    CompiledSubprogram cached;
    {
      MutexLock lock(cache_mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        for (const CacheEntry& entry : it->second) {
          if (entry.digest == digest && entry.canonical == canonical) {
            ++stats_.hits;
            hit = true;
            cached = entry.compiled;
            break;
          }
          collided = true;
        }
      }
      if (hit) {
        SF_COUNTER_ADD("engine.cache.hits", 1);
        SF_COUNTER_ADD("compiler.cache_hits", 1);
      } else {
        if (collided) {
          ++stats_.collisions;
          SF_COUNTER_ADD("engine.cache.collisions", 1);
        }
        ++stats_.misses;
        SF_COUNTER_ADD("engine.cache.misses", 1);
        SF_COUNTER_ADD("compiler.cache_misses", 1);
      }
    }
    if (options_.label_metrics_by_request) {
      AddLabeledCounter(hit ? "engine.cache.hits" : "engine.cache.misses", report->request_id);
    }
    if (hit) {
      cached.request_id = report->request_id;
      FillResultSummary(cached, report);
      report->outcome = "cache_hit";
      report->bucket_hit = !options.shape_bucket.empty();
      PrewarmJit(cached, report);
      report->wall_ms = MsSince(request_start);
      FlightRecorder::Global().Record(report->request_id, "engine",
                                      "request served from program cache");
      EmitReport(*report);
      return cached;
    }
    if (collided) {
      // A fingerprint alias: worth a post-mortem even though the request
      // recovers by compiling fresh into the same bucket.
      report->cache_collision = true;
      if (options_.label_metrics_by_request) {
        AddLabeledCounter("engine.cache.collisions", report->request_id);
      }
      FlightRecorder::Global().Record(
          report->request_id, "engine",
          StrCat("cache collision: fingerprint aliased, canonical form mismatched (graph ",
                 graph.name(), ")"));
      FlightRecorder::Global().DumpToFailureLog(report->request_id,
                                                "program-cache fingerprint collision");
    }
    if (persistent_ != nullptr) {
      CompiledSubprogram from_disk;
      std::string detail;
      const PersistentProgramCache::LoadResult loaded =
          persistent_->Load(fingerprint, digest, options.arch.name, canonical, &from_disk,
                            &detail, options.shape_bucket);
      switch (loaded) {
        case PersistentProgramCache::LoadResult::kHit: {
          {
            MutexLock lock(cache_mu_);
            ++stats_.persistent_hits;
            std::vector<CacheEntry>& bucket = cache_[key];
            bool present = false;
            for (const CacheEntry& entry : bucket) {
              if (entry.digest == digest && entry.canonical == canonical) {
                present = true;
                break;
              }
            }
            if (!present) {
              bucket.push_back(CacheEntry{digest, canonical, from_disk});
            }
          }
          SF_COUNTER_ADD("engine.cache.persistent_hits", 1);
          if (options_.label_metrics_by_request) {
            AddLabeledCounter("engine.cache.persistent_hits", report->request_id);
          }
          from_disk.request_id = report->request_id;
          FillResultSummary(from_disk, report);
          report->outcome = "persistent_hit";
          report->bucket_hit = !options.shape_bucket.empty();
          PrewarmJit(from_disk, report);
          report->wall_ms = MsSince(request_start);
          FlightRecorder::Global().Record(report->request_id, "engine",
                                          "request warmed from persistent cache");
          EmitReport(*report);
          return from_disk;
        }
        case PersistentProgramCache::LoadResult::kStale: {
          // Options or code drifted since the entry was written: by design a
          // silent cold fallback, never an error surfaced to the caller.
          {
            MutexLock lock(cache_mu_);
            ++stats_.persistent_stale;
          }
          SF_COUNTER_ADD("engine.cache.persistent_stale", 1);
          FlightRecorder::Global().Record(report->request_id, "engine",
                                          StrCat("persistent cache entry stale: ", detail));
          break;
        }
        case PersistentProgramCache::LoadResult::kCorrupt: {
          {
            MutexLock lock(cache_mu_);
            ++stats_.persistent_corrupt;
          }
          SF_COUNTER_ADD("engine.cache.persistent_corrupt", 1);
          SF_LOG(Warning) << "persistent cache entry corrupt, recompiling cold: " << detail;
          FlightRecorder::Global().Record(report->request_id, "engine",
                                          StrCat("persistent cache entry corrupt: ", detail));
          break;
        }
        case PersistentProgramCache::LoadResult::kMiss:
          break;
      }
    }
  } else {
    MutexLock lock(cache_mu_);
    ++stats_.misses;
    SF_COUNTER_ADD("engine.cache.misses", 1);
    SF_COUNTER_ADD("compiler.cache_misses", 1);
  }

  StatusOr<CompiledSubprogram> compiled =
      CompileUncached(graph, options, digest, report->request_id, report);
  report->wall_ms = MsSince(request_start);
  if (!compiled.ok()) {
    report->outcome = "error";
    report->status_message = compiled.status().ToString();
    ExtractDiagnostics(report->status_message, report);
    FlightRecorder::Global().Record(report->request_id, "engine",
                                    StrCat("request failed: ", compiled.status().message()));
    FlightRecorder::Global().DumpToFailureLog(report->request_id, compiled.status().message());
    EmitReport(*report);
    return compiled.status();
  }
  CompiledSubprogram result = std::move(compiled).value();
  result.request_id = report->request_id;
  FillResultSummary(result, report);
  report->outcome = "cold";

  if (persistent_ != nullptr) {
    // Admission gate: a racy program must never be persisted — a later
    // daemon would serve it without recompiling, so disk is where a bad
    // schedule would outlive the compiler bug that produced it. The result
    // is still returned to the caller (the Analyze pass owns failing the
    // compile; here only persistence is refused).
    DiagnosticReport admission = options_.admission_analysis
                                     ? options_.admission_analysis(result.program, graph)
                                     : AnalyzeCompiledProgram(result.program, graph);
    if (!admission.ok()) {
      {
        MutexLock lock(cache_mu_);
        ++stats_.analysis_rejected;
      }
      SF_COUNTER_ADD("engine.cache.analysis_rejected", 1);
      SF_LOG(Warning) << "racy schedule not persisted (" << admission.error_count()
                      << " SFV06xx finding(s)): " << admission.ToString();
      FlightRecorder::Global().Record(
          report->request_id, "engine",
          StrCat("persistence refused: race analysis reported ", admission.error_count(),
                 " finding(s)"));
    } else {
      // Best effort: a full disk or unwritable directory costs persistence,
      // never the compile result.
      Status stored = persistent_->Store(fingerprint, digest, options.arch.name, canonical,
                                         result, options.shape_bucket);
      if (stored.ok()) {
        SF_COUNTER_ADD("engine.cache.persistent_stores", 1);
      } else {
        SF_LOG(Warning) << "persistent cache store failed: " << stored.ToString();
      }
    }
  }
  if (options_.enable_program_cache) {
    MutexLock lock(cache_mu_);
    std::vector<CacheEntry>& bucket = cache_[key];
    bool present = false;
    for (const CacheEntry& entry : bucket) {
      if (entry.digest == digest && entry.canonical == canonical) {
        present = true;  // a concurrent request compiled it first
        break;
      }
    }
    if (!present) {
      bucket.push_back(CacheEntry{digest, std::move(canonical), result});
    }
  }
  PrewarmJit(result, report);
  report->wall_ms = MsSince(request_start);
  FlightRecorder::Global().Record(report->request_id, "engine", "request done");
  EmitReport(*report);
  return result;
}

StatusOr<CompiledSubprogram> CompilerEngine::CompileUncached(const Graph& graph,
                                                             const CompileOptions& options,
                                                             std::uint64_t digest,
                                                             const std::string& request_id,
                                                             CompileReport* report) {
  ScopedSpan compile_span("compiler.compile");
  compile_span.Arg("graph", graph.name()).Arg("ops", static_cast<std::int64_t>(graph.ops().size()));
  SF_COUNTER_ADD("compiler.subprograms_compiled", 1);

  CostModel cost(options.arch);
  CompilationState state;
  state.graph = &graph;
  state.options = &options;
  state.rc = ResourceConfig::FromArch(options.arch);
  state.cost = &cost;
  state.cost_cache = CostCacheFor(digest);
  state.fusion = &fusion_;

  PassManagerOptions pm_options;
  pm_options.request_id = request_id;
  if (options_.label_metrics_by_request) {
    pm_options.metric_label = LabeledMetricName("", "request_id", request_id);
  }
  PassManager manager(BuildCompilePassList(options), std::move(pm_options));
  Status run_status = manager.Run(&state);
  // Pass timings reach the report even when a pass failed: the partial
  // breakdown is exactly what a post-mortem needs.
  for (const PassTiming& timing : manager.timings()) {
    report->passes.push_back({timing.pass, timing.ms, timing.cpu_ms});
  }
  SF_RETURN_IF_ERROR(run_status);

  CompiledSubprogram best = std::move(state.best);
  // Table 4's wall-clock columns, rebuilt from the pass timings: the
  // enumeration column is exactly the "search.enum_cfg" span total, and the
  // slicing column is the rest of the scheduling passes (SMG build +
  // slicing/partitioning pipeline).
  double enum_ms = manager.SpanTotalMs("search.enum_cfg");
  double scheduling_ms = manager.PassMs("BuildSmg") + manager.PassMs("SlicingPipeline");
  best.compile_time.slicing_ms = std::max(0.0, scheduling_ms - enum_ms);
  best.compile_time.enum_cfg_ms = enum_ms;
  best.compile_time.tuning_s = state.total_tuning_s;
  best.tuning.configs_enumerated = state.enumerated_configs;
  best.tuning.configs_screened = state.configs_screened;
  best.tuning.configs_tried = state.configs_tried;
  best.tuning.configs_transfer_seeded = state.configs_transfer_seeded;
  best.tuning.best_time_us = best.estimate.time_us;
  best.tuning.simulated_tuning_seconds = state.total_tuning_s;
  best.tuned_kernels = std::move(state.tuned_kernels);
  compile_span.Arg("configs_screened", state.configs_screened)
      .Arg("configs_tried", state.configs_tried)
      .Arg("best_us", best.estimate.time_us);
  return best;
}

StatusOr<CompiledModel> CompilerEngine::CompileModel(const ModelGraph& model) {
  return CompileModel(model, options_.compile);
}

StatusOr<CompiledModel> CompilerEngine::CompileModel(const ModelGraph& model,
                                                     const CompileOptions& options) {
  ScopedSpan model_span("compiler.compile_model");
  model_span.Arg("model", model.config.name)
      .Arg("subprograms", static_cast<std::int64_t>(model.subprograms.size()));
  const auto model_start = std::chrono::steady_clock::now();
  CompiledModel out;
  out.report.request_id = NextRequestId();
  out.report.model = model.config.name;
  out.report.options_digest =
      &options == &options_.compile ? default_digest_ : CompileOptionsDigest(options);
  std::uint64_t model_fingerprint = 1469598103934665603ULL;
  bool any_cold = false;
  bool any_persistent = false;
  // Intra-request dedup: repeated subprograms of *this* model compile once
  // and count into CompiledModel::cache_hits (the paper's statistic).
  // Cross-request reuse happens inside CompileWithReport via the program
  // cache.
  std::map<std::uint64_t, size_t> compiled_index;
  for (const Subprogram& sub : model.subprograms) {
    std::uint64_t key = Fingerprint(sub.graph);
    MixInto(&model_fingerprint, key);
    auto it = compiled_index.find(key);
    if (it == compiled_index.end()) {
      CompileReport sub_report;
      SF_ASSIGN_OR_RETURN(CompiledSubprogram compiled,
                          CompileWithReport(sub.graph, options, model.config.name, &sub_report));
      out.compile_time.slicing_ms += compiled.compile_time.slicing_ms;
      out.compile_time.enum_cfg_ms += compiled.compile_time.enum_cfg_ms;
      out.compile_time.tuning_s += compiled.compile_time.tuning_s;
      // Fold the per-request report into the model-level one: passes summed
      // by name, funnel counters added, memory maxima kept.
      any_cold = any_cold || sub_report.outcome == "cold";
      any_persistent = any_persistent || sub_report.outcome == "persistent_hit";
      out.report.cache_collision = out.report.cache_collision || sub_report.cache_collision;
      for (const PassReportEntry& pass : sub_report.passes) {
        bool merged = false;
        for (PassReportEntry& have : out.report.passes) {
          if (have.pass == pass.pass) {
            have.wall_ms += pass.wall_ms;
            have.cpu_ms += pass.cpu_ms;
            merged = true;
            break;
          }
        }
        if (!merged) {
          out.report.passes.push_back(pass);
        }
      }
      out.report.configs_enumerated += sub_report.configs_enumerated;
      out.report.configs_screened += sub_report.configs_screened;
      out.report.configs_admitted += sub_report.configs_admitted;
      out.report.tuning_seconds += sub_report.tuning_seconds;
      out.report.verifier_errors += sub_report.verifier_errors;
      out.report.verifier_warnings += sub_report.verifier_warnings;
      out.report.kernels += sub_report.kernels;
      out.report.smem_bytes = std::max(out.report.smem_bytes, sub_report.smem_bytes);
      out.report.reg_bytes = std::max(out.report.reg_bytes, sub_report.reg_bytes);
      out.report.jit_kernels_built += sub_report.jit_kernels_built;
      out.report.jit_kernels_cached += sub_report.jit_kernels_cached;
      out.report.jit_build_ms += sub_report.jit_build_ms;
      out.report.transfer_seeded += sub_report.transfer_seeded;
      out.report.shape = sub_report.shape;
      out.report.bucket = sub_report.bucket;
      compiled_index.emplace(key, out.unique_subprograms.size());
      out.unique_subprograms.push_back(std::move(compiled));
      it = compiled_index.find(key);
    } else {
      ++out.cache_hits;
      SF_COUNTER_ADD("compiler.cache_hits", 1);
    }
    out.total += out.unique_subprograms[it->second].estimate.Scaled(sub.repeat);
  }
  out.report.graph_fingerprint = model_fingerprint;
  // Priority encodes "how much work ran": any cold compile marks the model
  // cold; a fully warm model distinguishes disk-warmed from memory-served.
  out.report.outcome = any_cold || out.unique_subprograms.empty() ? "cold"
                       : any_persistent                           ? "persistent_hit"
                                                                  : "cache_hit";
  out.report.bucket_hit = !out.report.bucket.empty() && !any_cold && !out.unique_subprograms.empty();
  out.report.modeled_time_us = out.total.time_us;
  out.report.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - model_start)
          .count();
  model_span.Arg("cache_hits", out.cache_hits).Arg("total_us", out.total.time_us);
  out.metrics = MetricsRegistry::Global().Snapshot();
  return out;
}

std::vector<std::string> CompilerEngine::TransferPriorFor(std::uint64_t signature,
                                                          const ShapeKey& bucket) const {
  MutexLock lock(transfer_mu_);
  auto it = transfer_.find(signature);
  if (it == transfer_.end()) {
    return {};
  }
  const TransferEntry* best = nullptr;
  double best_dist = 0.0;
  for (const TransferEntry& entry : it->second) {
    if (entry.bucket == bucket) {
      // The same bucket is served by the structural cache; when the tuner
      // runs at all, only *neighboring* buckets can help.
      continue;
    }
    const double dist = BucketDistance(entry.bucket, bucket);
    if (best == nullptr || dist < best_dist ||
        (dist == best_dist && entry.bucket.Label() < best->bucket.Label())) {
      best = &entry;
      best_dist = dist;
    }
  }
  return best != nullptr ? best->configs : std::vector<std::string>();
}

void CompilerEngine::RecordTransferConfigs(const CompiledModel& compiled, const ShapeKey& bucket) {
  MutexLock lock(transfer_mu_);
  for (const CompiledSubprogram& sub : compiled.unique_subprograms) {
    for (const TunedKernelRecord& record : sub.tuned_kernels) {
      std::vector<TransferEntry>& entries = transfer_[record.signature];
      bool replaced = false;
      for (TransferEntry& entry : entries) {
        if (entry.bucket == bucket) {
          entry.configs = record.admitted_configs;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        entries.push_back(TransferEntry{bucket, record.admitted_configs});
      }
    }
  }
}

StatusOr<ShapeCompileResult> CompilerEngine::CompileModelForShape(ModelKind kind,
                                                                  const ShapeKey& shape) {
  return CompileModelForShape(kind, shape, options_.compile);
}

StatusOr<ShapeCompileResult> CompilerEngine::CompileModelForShape(ModelKind kind,
                                                                  const ShapeKey& shape,
                                                                  const CompileOptions& options) {
  return CompileModelForShape(kind, shape, options, BucketingPolicy::FromEnv());
}

StatusOr<ShapeCompileResult> CompilerEngine::CompileModelForShape(ModelKind kind,
                                                                  const ShapeKey& shape,
                                                                  const CompileOptions& base,
                                                                  const BucketingPolicy& policy) {
  ScopedSpan span("engine.compile_for_shape");
  ShapeCompileResult out;
  out.bucketed = BuildModelBucketed(kind, shape, policy);
  const ShapeKey bucket_key = out.bucketed.bucket_key;
  span.Arg("model", out.bucketed.exact.name)
      .Arg("shape", shape.Label())
      .Arg("bucket", bucket_key.Label());

  CompileOptions options = base;
  options.shape_bucket = bucket_key.Label();
  const GpuArch arch = options.arch;
  const ResourceConfig rc = ResourceConfig::FromArch(options.arch);
  options.tuner.transfer_prior = [this, bucket_key, arch, rc](const SmgSchedule& schedule) {
    return TransferPriorFor(TransferSignature(schedule, arch, rc), bucket_key);
  };

  SF_ASSIGN_OR_RETURN(out.compiled, CompileModel(out.bucketed.model, options));
  RecordTransferConfigs(out.compiled, bucket_key);
  out.bucket_hit = out.compiled.report.bucket_hit;
  out.transfer_seeded = out.compiled.report.transfer_seeded;
  // The model-level report distinguishes the request shape from its bucket;
  // per-subprogram reports (already emitted) carry the bucket in both.
  out.compiled.report.shape = shape.Label();

  {
    MutexLock lock(cache_mu_);
    if (out.bucket_hit) {
      ++stats_.bucket_hits;
    } else {
      ++stats_.bucket_misses;
    }
    stats_.transfer_seeded += out.transfer_seeded;
  }
  SF_COUNTER_ADD(out.bucket_hit ? "engine.bucket.hits" : "engine.bucket.misses", 1);
  if (out.transfer_seeded > 0) {
    SF_COUNTER_ADD("engine.bucket.transfer_seeded", out.transfer_seeded);
  }
  return out;
}

CompilerEngine::CacheStats CompilerEngine::cache_stats() const {
  MutexLock lock(cache_mu_);
  return stats_;
}

std::int64_t CompilerEngine::program_cache_size() const {
  MutexLock lock(cache_mu_);
  std::int64_t n = 0;
  for (const auto& [key, bucket] : cache_) {
    n += static_cast<std::int64_t>(bucket.size());
  }
  return n;
}

}  // namespace spacefusion
