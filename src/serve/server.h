// ServeServer: the compilation-as-a-service core behind sf-serve.
//
// Wraps a CompilerEngine with the serving concerns an embedded compiler does
// not have:
//
//   * Admission — a bounded number of distinct compile jobs may be queued or
//     running; past it, new work is rejected with RESOURCE_EXHAUSTED rather
//     than queued without bound.
//   * Coalescing — concurrent requests for the same (model graph
//     fingerprint, options digest) share ONE compile: the first request
//     creates the job, later ones attach as waiters and are answered from
//     the same result (serve.coalesced). This is the request-level
//     counterpart of the engine's program cache: the cache dedupes across
//     time, coalescing dedupes in flight.
//   * Per-client quotas — each client (ServeRequest::client) may have a
//     bounded number of unfinished requests; past it, RESOURCE_EXHAUSTED.
//   * Deadlines — a request with deadline_ms > 0 that expires before its
//     job starts or finishes is answered DEADLINE_EXCEEDED. An expired
//     request never poisons any cache: if every waiter of a job expired
//     before it started, the compile is skipped entirely; if the compile
//     did run, its (valid) result is cached and only the delivery is
//     dropped.
//
// Responses are futures: Submit never blocks on a compile. The server owns a
// private ThreadPool for job execution — deliberately NOT the global pool,
// whose zero-worker configuration runs Submit inline (the engine's tuner
// still uses the global pool inside a job, so SPACEFUSION_JOBS keeps
// controlling intra-compile parallelism).
//
// Pause/Resume gate job *starts* (running jobs finish). Tests use it to make
// admission behavior deterministic: pause, storm the server, assert
// coalescing/quota/queue decisions synchronously, resume.
#ifndef SPACEFUSION_SRC_SERVE_SERVER_H_
#define SPACEFUSION_SRC_SERVE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/serve/protocol.h"
#include "src/support/thread_annotations.h"
#include "src/support/thread_pool.h"

namespace spacefusion {

struct ServeServerOptions {
  // Base compile options; a request's "arch" replaces the architecture.
  CompileOptions compile;
  // Compile worker threads (clamped to >= 1; the global pool's zero-worker
  // inline mode would break Submit's async contract).
  int workers = 2;
  // Max distinct compile jobs queued or running before new jobs are
  // rejected. Coalescing waiters don't count: they add no work.
  int max_inflight_jobs = 64;
  // Max unfinished requests per client (coalesced or not).
  int per_client_inflight = 8;
  // Persistent program cache directory for the wrapped engine; defaults to
  // SPACEFUSION_CACHE_DIR. Empty disables persistence.
  std::string cache_dir = CacheDirFromEnv();
  // Prewarm the native-kernel JIT on every served program (see
  // EngineOptions::prewarm_jit). Kernels persist in "<cache_dir>/kernels"
  // next to the .sfpc program cache, so a daemon restart warms programs
  // AND kernels: the second start performs zero toolchain invocations.
  bool prewarm_jit = false;
  // Start with the job gate closed (tests).
  bool start_paused = false;

  ServeServerOptions() = default;
};

class ServeServer {
 public:
  struct Stats {
    std::int64_t submitted = 0;         // requests past parsing (any fate)
    std::int64_t completed = 0;         // delivered with status "ok"
    std::int64_t coalesced = 0;         // attached to an in-flight job
    std::int64_t compiles = 0;          // jobs whose compile actually ran
    std::int64_t compile_skipped = 0;   // jobs abandoned: all waiters expired
    std::int64_t rejected_quota = 0;
    std::int64_t rejected_queue = 0;
    std::int64_t deadline_expired = 0;
    std::int64_t failed = 0;            // compile errors / bad requests
  };

  explicit ServeServer(ServeServerOptions options);
  // Resumes, finishes every queued job, and delivers every response.
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Admits (or rejects) `request` and returns the eventual response. The
  // returned future is always fulfilled, never broken — rejections resolve
  // it immediately with a non-"ok" status.
  std::future<ServeResponse> Submit(ServeRequest request);

  // Submit + wait.
  ServeResponse Handle(ServeRequest request);

  void Pause();
  void Resume();

  Stats stats() const;
  // Jobs currently queued or running (coalesced waiters not counted).
  std::int64_t inflight_jobs() const;
  // Clients with a live per-client quota entry. Rejected or finished
  // clients are dropped from the map, so this stays bounded by the number
  // of clients that currently have work in flight.
  std::int64_t tracked_clients() const;
  CompilerEngine& engine() { return *engine_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    std::promise<ServeResponse> promise;
    std::string request_id;
    std::string client;
    std::string shape;  // this requester's exact shape label
    bool coalesced = false;
    bool has_deadline = false;
    Clock::time_point deadline;
    Clock::time_point enqueued;
  };

  // One bucketed compile. Coalescing is bucket-level: requests whose shapes
  // round to the same bucket (same model kind, arch, options) share one job,
  // so a mixed-shape storm compiles each bucket once.
  struct Job {
    std::uint64_t key = 0;
    ModelKind kind = ModelKind::kBert;
    ShapeKey shape;  // first requester's shape; any shape in the bucket works
    CompileOptions options;
    std::string model_name;
    std::vector<Waiter> waiters;  // guarded by the server mutex
  };

  void RunJob(const std::shared_ptr<Job>& job);
  // Decrements the owner's quota slot and fulfills the promise.
  void Deliver(Waiter* waiter, ServeResponse response);
  ServeResponse RejectedResponse(const ServeRequest& request, StatusCode code,
                                 const std::string& detail) const;

  ServeServerOptions options_;
  std::unique_ptr<CompilerEngine> engine_;

  mutable Mutex mu_;
  CondVar pause_cv_;
  bool paused_ SF_GUARDED_BY(mu_) = false;
  bool shutting_down_ SF_GUARDED_BY(mu_) = false;
  // Keyed by Job::key. Job::waiters is also guarded by mu_ (the annotation
  // lives here because the analysis cannot name an owner's mutex from
  // inside the nested struct).
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_ SF_GUARDED_BY(mu_);
  std::map<std::string, int> client_inflight_ SF_GUARDED_BY(mu_);
  Stats stats_ SF_GUARDED_BY(mu_);

  // Last: joined (and queue drained) before the members above die.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SERVE_SERVER_H_
