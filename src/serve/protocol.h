// The sf-serve wire protocol: newline-delimited JSON (NDJSON), one request
// object per line in, one response object per line out, over an AF_UNIX
// socket or stdin/stdout. Reuses the src/support/json document model; modeled
// quantities travel as %.17g doubles so a response round-trips bit-exactly
// (the warm-start contract is checked end-to-end through this protocol).
//
// Request line:
//   {"id":"r1","client":"ci","model":"bert","batch":1,"seq":128,
//    "arch":"a100","deadline_ms":0}
// id is echoed back; client keys the per-client quota (default "anonymous");
// deadline_ms <= 0 means no deadline. "shutdown" as the model name asks the
// daemon to exit after responding (tools/sf_serve.cc).
//
// Response line (success):
//   {"id":"r1","status":"ok","outcome":"cold","coalesced":false, ...}
// status is "ok" or a StatusCodeName ("DEADLINE_EXCEEDED",
// "RESOURCE_EXHAUSTED", ...) with the detail in "error".
#ifndef SPACEFUSION_SRC_SERVE_PROTOCOL_H_
#define SPACEFUSION_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/graph/models.h"
#include "src/graph/shape_bucket.h"
#include "src/sim/arch.h"
#include "src/sim/kernel.h"
#include "src/support/status.h"

namespace spacefusion {

struct ServeRequest {
  std::string id;                  // client-chosen, echoed in the response
  std::string client = "anonymous";  // quota key
  std::string model;               // "bert" | "albert" | "t5" | "vit" | "llama2"
  // The request shape. On the wire either as "batch"/"seq" integers or as
  // one "shape":"b<batch>s<seq>" label (mixing both is ambiguous and
  // rejected). Malformed shape fields are an SFV0701 INVALID_ARGUMENT —
  // never silently replaced by the defaults.
  std::int64_t batch = 1;
  std::int64_t seq = 128;
  std::string arch = "a100";       // "v100" | "a100" | "h100"
  std::int64_t deadline_ms = 0;    // <= 0: no deadline

  ShapeKey shape_key() const { return {batch, seq}; }
};

struct ServeResponse {
  std::string id;
  std::string status = "ok";       // "ok" or a StatusCodeName
  std::string error;               // detail when status != "ok"
  std::string outcome;             // "cold" | "cache_hit" | "persistent_hit"
  bool coalesced = false;          // waited on another request's compile
  std::string model;
  int unique_subprograms = 0;
  int cache_hits = 0;              // intra-model repeats served from cache
  double tuning_seconds = 0.0;     // simulated tuning time (deterministic)
  ExecutionReport estimate;        // whole-model modeled execution
  double wall_ms = 0.0;            // daemon-side wall clock (nondeterministic)
  // Shape bucketing: the request shape label, the bucket it was routed to,
  // whether the whole request was served without a tuner invocation, and how
  // many tuner configs were seeded from a neighboring bucket. Absent in
  // pre-bucket responses (parse back as empty/zero).
  std::string shape;
  std::string bucket;
  bool bucket_hit = false;
  std::int64_t transfer_seeded = 0;

  bool ok() const { return status == "ok"; }
};

// Parses "bert" / "albert" / "t5" / "vit" / "llama2" (case-insensitive).
StatusOr<ModelKind> ModelKindFromName(const std::string& name);

// Parses "v100" / "a100" / "h100" (case-insensitive) into a GpuArch name
// suitable for ArchByName below.
StatusOr<GpuArch> ArchFromName(const std::string& name);

std::string ServeRequestToJson(const ServeRequest& request);
StatusOr<ServeRequest> ServeRequestFromJson(const std::string& line);

std::string ServeResponseToJson(const ServeResponse& response);
StatusOr<ServeResponse> ServeResponseFromJson(const std::string& line);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SERVE_PROTOCOL_H_
