#include "src/serve/protocol.h"

#include <cstdio>

#include "src/support/json.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

// %.17g round-trips every finite double exactly; the warm-start contract
// compares ExecutionReports that crossed this protocol bit for bit.
std::string ExactDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::int64_t GetInt(const JsonValue& doc, const std::string& key, std::int64_t fallback) {
  const JsonValue* v = doc.Get(key);
  return v != nullptr && v->is_number() ? v->integer() : fallback;
}

// SFV0701: a shape field that is present must be a positive integral JSON
// number. A typo'd "seq":"256" used to fall back to the default silently —
// and compile the wrong bucket — so malformed shapes are now a hard error.
StatusOr<std::int64_t> GetShapeField(const JsonValue& doc, const std::string& key,
                                     std::int64_t fallback) {
  const JsonValue* v = doc.Get(key);
  if (v == nullptr) {
    return fallback;
  }
  if (!v->is_number() || v->number() != static_cast<double>(v->integer()) || v->integer() < 1) {
    return InvalidArgument(
        StrCat("[SFV0701] serve request: \"", key, "\" must be a positive integer"));
  }
  return v->integer();
}

}  // namespace

StatusOr<ModelKind> ModelKindFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "bert") {
    return ModelKind::kBert;
  }
  if (lower == "albert") {
    return ModelKind::kAlbert;
  }
  if (lower == "t5") {
    return ModelKind::kT5;
  }
  if (lower == "vit") {
    return ModelKind::kViT;
  }
  if (lower == "llama2") {
    return ModelKind::kLlama2;
  }
  return InvalidArgument(StrCat("unknown model \"", name,
                                "\" (expected bert|albert|t5|vit|llama2)"));
}

StatusOr<GpuArch> ArchFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  // Chip codes and microarchitecture names both work: GpuArch::name is
  // "Volta"/"Ampere"/"Hopper", the paper and CLI flags say V100/A100/H100.
  if (lower == "v100" || lower == "volta") {
    return VoltaV100();
  }
  if (lower == "a100" || lower == "ampere") {
    return AmpereA100();
  }
  if (lower == "h100" || lower == "hopper") {
    return HopperH100();
  }
  return InvalidArgument(StrCat("unknown arch \"", name, "\" (expected v100|a100|h100)"));
}

std::string ServeRequestToJson(const ServeRequest& request) {
  return StrCat("{\"id\":\"", JsonEscape(request.id), "\",\"client\":\"",
                JsonEscape(request.client), "\",\"model\":\"", JsonEscape(request.model),
                "\",\"batch\":", request.batch, ",\"seq\":", request.seq, ",\"arch\":\"",
                JsonEscape(request.arch), "\",\"deadline_ms\":", request.deadline_ms, "}");
}

StatusOr<ServeRequest> ServeRequestFromJson(const std::string& line) {
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return InvalidArgument("serve request: line is not a JSON object");
  }
  ServeRequest request;
  request.id = doc.GetString("id");
  request.client = doc.GetString("client", "anonymous");
  request.model = doc.GetString("model");
  if (const JsonValue* shape = doc.Get("shape"); shape != nullptr) {
    if (doc.Get("batch") != nullptr || doc.Get("seq") != nullptr) {
      return InvalidArgument(
          "[SFV0701] serve request: \"shape\" and \"batch\"/\"seq\" are mutually exclusive");
    }
    if (!shape->is_string()) {
      return InvalidArgument("[SFV0701] serve request: \"shape\" must be a \"b<batch>s<seq>\" string");
    }
    StatusOr<ShapeKey> key = ParseShapeLabel(shape->str());
    if (!key.ok()) {
      return InvalidArgument(StrCat("[SFV0701] serve request: ", key.status().message()));
    }
    request.batch = key->batch;
    request.seq = key->seq;
  } else {
    SF_ASSIGN_OR_RETURN(request.batch, GetShapeField(doc, "batch", 1));
    SF_ASSIGN_OR_RETURN(request.seq, GetShapeField(doc, "seq", 128));
  }
  request.arch = doc.GetString("arch", "a100");
  request.deadline_ms = GetInt(doc, "deadline_ms", 0);
  if (request.model.empty()) {
    return InvalidArgument("serve request: missing \"model\"");
  }
  return request;
}

std::string ServeResponseToJson(const ServeResponse& response) {
  std::string out = StrCat("{\"id\":\"", JsonEscape(response.id), "\",\"status\":\"",
                           JsonEscape(response.status), "\"");
  if (!response.ok()) {
    out += StrCat(",\"error\":\"", JsonEscape(response.error), "\"}");
    return out;
  }
  out += StrCat(
      ",\"outcome\":\"", JsonEscape(response.outcome),
      "\",\"coalesced\":", response.coalesced ? "true" : "false", ",\"model\":\"",
      JsonEscape(response.model), "\",\"unique_subprograms\":", response.unique_subprograms,
      ",\"cache_hits\":", response.cache_hits,
      ",\"tuning_seconds\":", ExactDouble(response.tuning_seconds),
      ",\"estimate\":{\"time_us\":", ExactDouble(response.estimate.time_us),
      ",\"kernel_count\":", response.estimate.kernel_count,
      ",\"flops\":", response.estimate.flops, ",\"dram_bytes\":", response.estimate.dram_bytes,
      ",\"l1_accesses\":", response.estimate.l1_accesses,
      ",\"l1_misses\":", response.estimate.l1_misses,
      ",\"l2_accesses\":", response.estimate.l2_accesses,
      ",\"l2_misses\":", response.estimate.l2_misses,
      "},\"wall_ms\":", ExactDouble(response.wall_ms),
      ",\"shape\":\"", JsonEscape(response.shape),
      "\",\"bucket\":\"", JsonEscape(response.bucket),
      "\",\"bucket_hit\":", response.bucket_hit ? "true" : "false",
      ",\"transfer_seeded\":", response.transfer_seeded, "}");
  return out;
}

StatusOr<ServeResponse> ServeResponseFromJson(const std::string& line) {
  SF_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(line));
  if (!doc.is_object()) {
    return InvalidArgument("serve response: line is not a JSON object");
  }
  ServeResponse response;
  response.id = doc.GetString("id");
  response.status = doc.GetString("status", "ok");
  response.error = doc.GetString("error");
  response.outcome = doc.GetString("outcome");
  const JsonValue* coalesced = doc.Get("coalesced");
  response.coalesced = coalesced != nullptr && coalesced->boolean();
  response.model = doc.GetString("model");
  response.unique_subprograms = static_cast<int>(GetInt(doc, "unique_subprograms", 0));
  response.cache_hits = static_cast<int>(GetInt(doc, "cache_hits", 0));
  response.tuning_seconds = doc.GetNumber("tuning_seconds");
  if (const JsonValue* estimate = doc.Get("estimate");
      estimate != nullptr && estimate->is_object()) {
    response.estimate.time_us = estimate->GetNumber("time_us");
    response.estimate.kernel_count = static_cast<int>(GetInt(*estimate, "kernel_count", 0));
    response.estimate.flops = GetInt(*estimate, "flops", 0);
    response.estimate.dram_bytes = GetInt(*estimate, "dram_bytes", 0);
    response.estimate.l1_accesses = GetInt(*estimate, "l1_accesses", 0);
    response.estimate.l1_misses = GetInt(*estimate, "l1_misses", 0);
    response.estimate.l2_accesses = GetInt(*estimate, "l2_accesses", 0);
    response.estimate.l2_misses = GetInt(*estimate, "l2_misses", 0);
  }
  response.wall_ms = doc.GetNumber("wall_ms");
  response.shape = doc.GetString("shape");
  response.bucket = doc.GetString("bucket");
  const JsonValue* bucket_hit = doc.Get("bucket_hit");
  response.bucket_hit = bucket_hit != nullptr && bucket_hit->boolean();
  response.transfer_seeded = GetInt(doc, "transfer_seeded", 0);
  return response;
}

}  // namespace spacefusion
