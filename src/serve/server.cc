#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/support/string_util.h"

namespace spacefusion {

namespace {

void Mix(std::uint64_t* h, std::uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ULL;  // FNV prime
}

}  // namespace

ServeServer::ServeServer(ServeServerOptions options) : options_(std::move(options)) {
  EngineOptions engine_options(options_.compile);
  engine_options.cache_dir = options_.cache_dir;
  engine_options.prewarm_jit = options_.prewarm_jit;
  engine_ = std::make_unique<CompilerEngine>(std::move(engine_options));
  paused_ = options_.start_paused;
  pool_ = std::make_unique<ThreadPool>(std::max(1, options_.workers));
}

ServeServer::~ServeServer() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
    paused_ = false;
  }
  pause_cv_.NotifyAll();
  // ThreadPool's destructor drains its queue before joining, so every
  // admitted job still runs and every promise is fulfilled.
  pool_.reset();
}

void ServeServer::Pause() {
  MutexLock lock(mu_);
  paused_ = true;
}

void ServeServer::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  pause_cv_.NotifyAll();
}

ServeServer::Stats ServeServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::int64_t ServeServer::inflight_jobs() const {
  MutexLock lock(mu_);
  return static_cast<std::int64_t>(jobs_.size());
}

std::int64_t ServeServer::tracked_clients() const {
  MutexLock lock(mu_);
  return static_cast<std::int64_t>(client_inflight_.size());
}

ServeResponse ServeServer::RejectedResponse(const ServeRequest& request, StatusCode code,
                                            const std::string& detail) const {
  ServeResponse response;
  response.id = request.id;
  response.status = StatusCodeName(code);
  response.error = detail;
  response.model = request.model;
  return response;
}

ServeResponse ServeServer::Handle(ServeRequest request) {
  return Submit(std::move(request)).get();
}

std::future<ServeResponse> ServeServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  SF_COUNTER_ADD("serve.requests", 1);

  StatusOr<ModelKind> kind = ModelKindFromName(request.model);
  StatusOr<GpuArch> arch = ArchFromName(request.arch);
  if (!kind.ok() || !arch.ok()) {
    const Status& bad = !kind.ok() ? kind.status() : arch.status();
    {
      MutexLock lock(mu_);
      ++stats_.submitted;
      ++stats_.failed;
    }
    SF_COUNTER_ADD("serve.failed", 1);
    promise.set_value(RejectedResponse(request, bad.code(), bad.message()));
    return future;
  }

  CompileOptions job_options = options_.compile;
  job_options.arch = std::move(arch).value();
  const ShapeKey shape = request.shape_key();
  const ShapeKey bucket = BucketingPolicy::FromEnv().BucketFor(shape);

  // Coalescing key = what the engine's shape-bucketed cache is keyed by:
  // model kind, the *bucket* the shape rounds to, and the options digest.
  // Two requests whose shapes land in the same bucket would compile the
  // same programs (the bucketed factory is structurally deterministic), so
  // they share one job, whatever their exact shapes, ids or clients.
  std::uint64_t key = 1469598103934665603ULL;
  Mix(&key, static_cast<std::uint64_t>(kind.value()));
  Mix(&key, static_cast<std::uint64_t>(bucket.batch));
  Mix(&key, static_cast<std::uint64_t>(bucket.seq));
  Mix(&key, CompileOptionsDigest(job_options));

  Waiter waiter;
  waiter.promise = std::move(promise);
  waiter.request_id = request.id;
  waiter.client = request.client;
  waiter.shape = shape.Label();
  waiter.enqueued = Clock::now();
  if (request.deadline_ms > 0) {
    waiter.has_deadline = true;
    waiter.deadline = waiter.enqueued + std::chrono::milliseconds(request.deadline_ms);
  }

  std::shared_ptr<Job> job_to_run;
  const char* reject_metric = nullptr;
  ServeResponse rejection;
  {
    MutexLock lock(mu_);
    ++stats_.submitted;
    // Quota is read without inserting: client_inflight_[] here used to plant
    // a zero entry for a first-time client even when the request was then
    // rejected on the queue-full path below, and nothing ever erased it —
    // the map grew by one dead entry per distinct rejected client. The
    // count is incremented only on the two admission paths.
    auto inflight_it = client_inflight_.find(request.client);
    const int inflight = inflight_it == client_inflight_.end() ? 0 : inflight_it->second;
    if (inflight >= options_.per_client_inflight) {
      ++stats_.rejected_quota;
      reject_metric = "serve.rejected_quota";
      rejection = RejectedResponse(
          request, StatusCode::kResourceExhausted,
          StrCat("client \"", request.client, "\" has ", inflight,
                 " request(s) in flight (limit ", options_.per_client_inflight, ")"));
    } else if (auto it = jobs_.find(key); it != jobs_.end()) {
      waiter.coalesced = true;
      ++client_inflight_[request.client];
      ++stats_.coalesced;
      SF_COUNTER_ADD("serve.coalesced", 1);
      it->second->waiters.push_back(std::move(waiter));
      return future;
    } else if (static_cast<int>(jobs_.size()) >= options_.max_inflight_jobs) {
      ++stats_.rejected_queue;
      reject_metric = "serve.rejected_queue";
      rejection = RejectedResponse(
          request, StatusCode::kResourceExhausted,
          StrCat("admission queue full: ", jobs_.size(), " job(s) in flight (limit ",
                 options_.max_inflight_jobs, ")"));
    } else {
      auto job = std::make_shared<Job>();
      job->key = key;
      job->kind = kind.value();
      job->shape = shape;
      job->options = std::move(job_options);
      job->model_name = GetModelConfig(kind.value(), request.batch, request.seq).name;
      ++client_inflight_[request.client];
      job->waiters.push_back(std::move(waiter));
      jobs_.emplace(key, job);
      job_to_run = std::move(job);
    }
  }
  if (reject_metric != nullptr) {
    SF_COUNTER_ADD(reject_metric, 1);
    waiter.promise.set_value(std::move(rejection));
    return future;
  }
  pool_->Submit([this, job_to_run] { RunJob(job_to_run); });
  return future;
}

void ServeServer::Deliver(Waiter* waiter, ServeResponse response) {
  {
    MutexLock lock(mu_);
    auto it = client_inflight_.find(waiter->client);
    if (it != client_inflight_.end() && --it->second <= 0) {
      client_inflight_.erase(it);
    }
    if (response.ok()) {
      ++stats_.completed;
    } else if (response.status == StatusCodeName(StatusCode::kDeadlineExceeded)) {
      ++stats_.deadline_expired;
    } else {
      ++stats_.failed;
    }
  }
  if (response.ok()) {
    SF_COUNTER_ADD("serve.completed", 1);
    SF_HISTOGRAM_OBSERVE("serve.wall_ms", response.wall_ms);
  } else if (response.status == StatusCodeName(StatusCode::kDeadlineExceeded)) {
    SF_COUNTER_ADD("serve.deadline_exceeded", 1);
  } else {
    SF_COUNTER_ADD("serve.failed", 1);
  }
  waiter->promise.set_value(std::move(response));
}

void ServeServer::RunJob(const std::shared_ptr<Job>& job) {
  std::vector<Waiter> expired;
  bool skip = false;
  {
    MutexLock lock(mu_);
    while (paused_ && !shutting_down_) {
      pause_cv_.Wait(mu_);
    }
    const Clock::time_point now = Clock::now();
    std::vector<Waiter>& waiters = job->waiters;
    for (auto it = waiters.begin(); it != waiters.end();) {
      if (it->has_deadline && it->deadline <= now) {
        expired.push_back(std::move(*it));
        it = waiters.erase(it);
      } else {
        ++it;
      }
    }
    if (waiters.empty()) {
      // Every requester already expired: skip the compile entirely. Nothing
      // reached the engine, so no cache (memory or disk) saw this request.
      jobs_.erase(job->key);
      ++stats_.compile_skipped;
      skip = true;
    } else {
      ++stats_.compiles;
    }
  }
  for (Waiter& waiter : expired) {
    Deliver(&waiter,
            RejectedResponse(ServeRequest{waiter.request_id, waiter.client, job->model_name},
                             StatusCode::kDeadlineExceeded,
                             "deadline expired before the compile started"));
  }
  if (skip) {
    SF_COUNTER_ADD("serve.compile_skipped", 1);
    return;
  }
  SF_COUNTER_ADD("serve.compiles", 1);

  StatusOr<ShapeCompileResult> compiled =
      engine_->CompileModelForShape(job->kind, job->shape, job->options);

  std::vector<Waiter> waiters;
  {
    MutexLock lock(mu_);
    jobs_.erase(job->key);
    waiters = std::move(job->waiters);
  }
  const Clock::time_point done = Clock::now();
  for (Waiter& waiter : waiters) {
    if (waiter.has_deadline && waiter.deadline <= done) {
      // The compile finished, its result is cached for the next request —
      // only this delivery expired.
      Deliver(&waiter,
              RejectedResponse(ServeRequest{waiter.request_id, waiter.client, job->model_name},
                               StatusCode::kDeadlineExceeded,
                               "deadline expired while the compile ran"));
      continue;
    }
    ServeResponse response;
    response.id = waiter.request_id;
    response.model = job->model_name;
    if (!compiled.ok()) {
      response.status = StatusCodeName(compiled.status().code());
      response.error = compiled.status().ToString();
    } else {
      const CompiledModel& result = compiled->compiled;
      response.outcome = result.report.outcome;
      response.coalesced = waiter.coalesced;
      response.unique_subprograms = static_cast<int>(result.unique_subprograms.size());
      response.cache_hits = result.cache_hits;
      response.tuning_seconds = result.compile_time.tuning_s;
      // The estimate is of the *bucket's* program — what actually executes
      // for every shape routed here.
      response.estimate = result.total;
      response.wall_ms =
          std::chrono::duration<double, std::milli>(done - waiter.enqueued).count();
      response.shape = waiter.shape;
      response.bucket = compiled->bucketed.bucket_key.Label();
      response.bucket_hit = compiled->bucket_hit;
      response.transfer_seeded = compiled->transfer_seeded;
    }
    Deliver(&waiter, std::move(response));
  }
}

}  // namespace spacefusion
