// Small integer helpers shared across the scheduler and the simulator.
#ifndef SPACEFUSION_SRC_SUPPORT_MATH_UTIL_H_
#define SPACEFUSION_SRC_SUPPORT_MATH_UTIL_H_

#include <cstdint>

namespace spacefusion {

// Integer ceiling division: CeilDiv(7, 2) == 4. Requires b > 0.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Rounds a up to the next multiple of b. Requires b > 0.
constexpr std::int64_t RoundUp(std::int64_t a, std::int64_t b) { return CeilDiv(a, b) * b; }

constexpr bool IsPowerOfTwo(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

// Smallest power of two >= x (x >= 1).
constexpr std::int64_t NextPowerOfTwo(std::int64_t x) {
  std::int64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

// Largest power of two <= x (x >= 1).
constexpr std::int64_t PrevPowerOfTwo(std::int64_t x) {
  std::int64_t p = 1;
  while ((p << 1) <= x) {
    p <<= 1;
  }
  return p;
}

// floor(log2(x)) for x >= 1.
constexpr int Log2Floor(std::int64_t x) {
  int n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_MATH_UTIL_H_
