// Fixed-size work-queue thread pool for the compiler's embarrassingly
// parallel loops (tuner configuration measurement, per-kernel tuning,
// pipeline candidates).
//
// Concurrency is controlled by SPACEFUSION_JOBS: the process-wide pool runs
// `jobs - 1` worker threads and the calling thread participates in every
// ParallelFor, so SPACEFUSION_JOBS=1 is exactly the serial path (no worker
// threads, no queueing). Unset / zero / negative / garbage values fall back
// to std::thread::hardware_concurrency().
//
// Determinism contract: the pool itself never orders results — callers
// write into index-addressed slots and reduce serially afterwards, so a
// ParallelFor over a pure function is bit-identical to the serial loop
// regardless of the job count (see DESIGN.md "Parallel tuning").
#ifndef SPACEFUSION_SRC_SUPPORT_THREAD_POOL_H_
#define SPACEFUSION_SRC_SUPPORT_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/support/thread_annotations.h"

namespace spacefusion {

// Parses a SPACEFUSION_JOBS-style value. Returns the job count for a valid
// positive integer and 0 for nullptr / empty / garbage / zero / negative
// (meaning "no override; use hardware concurrency").
int ParseJobs(const char* text);

// The effective job count: SPACEFUSION_JOBS if valid, otherwise
// std::thread::hardware_concurrency() (at least 1).
int DefaultJobCount();

class ThreadPool {
 public:
  // Spawns exactly `workers` threads (clamped to >= 0). With zero workers
  // every Submit/ParallelFor runs inline on the calling thread.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }
  // Concurrency of a ParallelFor: workers plus the participating caller.
  int concurrency() const { return workers() + 1; }

  // Enqueues `fn`; the future rethrows fn's exception on get(). Deadlock
  // guard: called from one of this pool's own workers (or with zero
  // workers), fn runs inline before Submit returns, so a task may submit
  // and wait on subtasks without consuming a queue slot it is blocking.
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(begin, end) over disjoint chunks covering [0, n); blocks until
  // every chunk completed. The calling thread claims chunks alongside the
  // workers; nested calls from a worker run serially inline. The first
  // exception thrown by any chunk is rethrown after completion.
  void ParallelFor(std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn);

  // True on a thread owned by this pool.
  bool InPool() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SF_GUARDED_BY(mu_);
  // Immutable after construction (workers() reads it without the lock).
  std::vector<std::thread> threads_;
  bool shutdown_ SF_GUARDED_BY(mu_) = false;
};

// The process-wide pool, created on first use with DefaultJobCount() - 1
// workers. References stay valid until the next ResetGlobalThreadPool.
ThreadPool& GlobalThreadPool();

// Replaces the global pool (joining the old workers first). `jobs <= 0`
// re-derives the count from the environment. Test / bench setup only: no
// tasks may be in flight.
void ResetGlobalThreadPool(int jobs = 0);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_THREAD_POOL_H_
