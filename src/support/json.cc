#include "src/support/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/support/string_util.h"

namespace spacefusion {

// Named (not anonymous-namespace) so the JsonValue friend declaration
// applies; local to this translation unit in practice.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    SF_RETURN_IF_ERROR(ParseValue(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return InvalidArgument(StrCat("json: ", what, " at offset ", pos_));
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    switch (Peek()) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      SF_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (Peek() != ':') {
        return Fail("expected ':' in object");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      SF_RETURN_IF_ERROR(ParseValue(&value));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      SF_RETURN_IF_ERROR(ParseValue(&value));
      out->items_.push_back(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (Peek() != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Fail("unterminated escape");
        }
        char e = text_[pos_];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (pos_ >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return Fail("bad \\u escape");
              }
              char h = text_[pos_];
              unsigned digit = h <= '9'   ? static_cast<unsigned>(h - '0')
                               : h <= 'F' ? static_cast<unsigned>(h - 'A' + 10)
                                          : static_cast<unsigned>(h - 'a' + 10);
              code = code * 16 + digit;
            }
            // UTF-8 encode (surrogate pairs are passed through as two
            // 3-byte sequences; the serializers here only escape control
            // characters, which are single-unit).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail(StrCat("malformed number \"", token, "\""));
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = parsed;
    return Status::Ok();
  }

  Status Literal(const char* word) {
    std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) {
      return Fail(StrCat("expected \"", w, "\""));
    }
    pos_ += w.size();
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* value = Get(key);
  return value != nullptr && value->is_number() ? value->number() : fallback;
}

std::string JsonValue::GetString(const std::string& key, const std::string& fallback) const {
  const JsonValue* value = Get(key);
  return value != nullptr && value->is_string() ? value->str() : fallback;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace spacefusion
