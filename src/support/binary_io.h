// Bounds-checked binary encoding for the persisted program cache.
//
// The on-disk format of compiled programs must reproduce doubles bit-for-bit
// (the warm-start contract is a bit-identical ExecutionReport), so values
// are stored as fixed-width little-endian raw bytes — no text round-trip.
// ByteReader is written for hostile input: every read is bounds-checked and
// returns Status instead of crashing, and length prefixes are validated
// against the bytes actually remaining before any allocation, so a mutated
// blob cannot request a gigantic vector.
#ifndef SPACEFUSION_SRC_SUPPORT_BINARY_IO_H_
#define SPACEFUSION_SRC_SUPPORT_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace spacefusion {

class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void F64(double v);
  void F32(float v);
  void Str(const std::string& s);
  void I64Vec(const std::vector<std::int64_t>& v);
  void I32Vec(const std::vector<std::int32_t>& v);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  // Non-owning view; `data` must outlive the reader.
  explicit ByteReader(const std::string& data) : data_(&data) {}

  Status U8(std::uint8_t* v);
  Status Bool(bool* v);
  Status U32(std::uint32_t* v);
  Status U64(std::uint64_t* v);
  Status I64(std::int64_t* v);
  Status I32(std::int32_t* v);
  Status F64(double* v);
  Status F32(float* v);
  Status Str(std::string* s);
  Status I64Vec(std::vector<std::int64_t>* v);
  Status I32Vec(std::vector<std::int32_t>* v);

  // Validated element count of a variable-length field: fails unless at
  // least `elem_bytes * count` bytes remain (elem_bytes >= 1), so corrupted
  // counts are rejected before any container reserves space.
  Status Count(std::uint64_t* count, std::uint64_t elem_bytes);

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_->size() - pos_; }
  bool AtEnd() const { return pos_ == data_->size(); }

 private:
  Status Raw(void* dst, size_t n);

  const std::string* data_;
  size_t pos_ = 0;
};

// FNV-1a over a byte range; the persisted blob's integrity checksum.
std::uint64_t Fnv1a64(const char* data, size_t n);
inline std::uint64_t Fnv1a64(const std::string& s) { return Fnv1a64(s.data(), s.size()); }

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_BINARY_IO_H_
