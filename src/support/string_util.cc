#include "src/support/string_util.h"

namespace spacefusion {

std::vector<std::string> StrSplit(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace spacefusion
