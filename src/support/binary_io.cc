#include "src/support/binary_io.h"

#include <cstring>

#include "src/support/string_util.h"

namespace spacefusion {

namespace {

// Little-endian on every supported target; spelled out so the format is
// identical across hosts regardless of native byte order.
template <typename T>
void AppendLe(std::string* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
T LoadLe(const char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void ByteWriter::U32(std::uint32_t v) { AppendLe(&out_, v); }
void ByteWriter::U64(std::uint64_t v) { AppendLe(&out_, v); }

void ByteWriter::F64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::F32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U32(bits);
}

void ByteWriter::Str(const std::string& s) {
  U64(s.size());
  out_.append(s);
}

void ByteWriter::I64Vec(const std::vector<std::int64_t>& v) {
  U64(v.size());
  for (std::int64_t x : v) {
    I64(x);
  }
}

void ByteWriter::I32Vec(const std::vector<std::int32_t>& v) {
  U64(v.size());
  for (std::int32_t x : v) {
    I32(x);
  }
}

Status ByteReader::Raw(void* dst, size_t n) {
  if (remaining() < n) {
    return DataLoss(StrCat("truncated: need ", n, " byte(s) at offset ", pos_, ", have ",
                           remaining()));
  }
  std::memcpy(dst, data_->data() + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::U8(std::uint8_t* v) { return Raw(v, 1); }

Status ByteReader::Bool(bool* v) {
  std::uint8_t byte = 0;
  SF_RETURN_IF_ERROR(U8(&byte));
  if (byte > 1) {
    return DataLoss(StrCat("invalid bool byte ", static_cast<int>(byte)));
  }
  *v = byte != 0;
  return Status::Ok();
}

Status ByteReader::U32(std::uint32_t* v) {
  char buf[4];
  SF_RETURN_IF_ERROR(Raw(buf, sizeof(buf)));
  *v = LoadLe<std::uint32_t>(buf);
  return Status::Ok();
}

Status ByteReader::U64(std::uint64_t* v) {
  char buf[8];
  SF_RETURN_IF_ERROR(Raw(buf, sizeof(buf)));
  *v = LoadLe<std::uint64_t>(buf);
  return Status::Ok();
}

Status ByteReader::I64(std::int64_t* v) {
  std::uint64_t u = 0;
  SF_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<std::int64_t>(u);
  return Status::Ok();
}

Status ByteReader::I32(std::int32_t* v) {
  std::uint32_t u = 0;
  SF_RETURN_IF_ERROR(U32(&u));
  *v = static_cast<std::int32_t>(u);
  return Status::Ok();
}

Status ByteReader::F64(double* v) {
  std::uint64_t bits = 0;
  SF_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status ByteReader::F32(float* v) {
  std::uint32_t bits = 0;
  SF_RETURN_IF_ERROR(U32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status ByteReader::Count(std::uint64_t* count, std::uint64_t elem_bytes) {
  SF_RETURN_IF_ERROR(U64(count));
  if (elem_bytes == 0) {
    elem_bytes = 1;
  }
  if (*count > remaining() / elem_bytes) {
    return DataLoss(StrCat("corrupt count ", *count, " (x", elem_bytes, " byte(s)) exceeds the ",
                           remaining(), " byte(s) remaining"));
  }
  return Status::Ok();
}

Status ByteReader::Str(std::string* s) {
  std::uint64_t len = 0;
  SF_RETURN_IF_ERROR(Count(&len, 1));
  s->assign(data_->data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status ByteReader::I64Vec(std::vector<std::int64_t>* v) {
  std::uint64_t n = 0;
  SF_RETURN_IF_ERROR(Count(&n, 8));
  v->clear();
  v->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t x = 0;
    SF_RETURN_IF_ERROR(I64(&x));
    v->push_back(x);
  }
  return Status::Ok();
}

Status ByteReader::I32Vec(std::vector<std::int32_t>* v) {
  std::uint64_t n = 0;
  SF_RETURN_IF_ERROR(Count(&n, 4));
  v->clear();
  v->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int32_t x = 0;
    SF_RETURN_IF_ERROR(I32(&x));
    v->push_back(x);
  }
  return Status::Ok();
}

std::uint64_t Fnv1a64(const char* data, size_t n) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace spacefusion
