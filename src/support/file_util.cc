#include "src/support/file_util.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/support/string_util.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace spacefusion {

namespace {

long ProcessId() {
#ifdef _WIN32
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

// Distinguishes concurrent writers of the same path inside one process; the
// pid distinguishes processes sharing a cache directory.
std::atomic<std::uint64_t> g_write_seq{0};

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    // A pre-existing directory is fine; a real failure surfaces at fopen.
  }
  std::string tmp = StrCat(path, ".tmp.", ProcessId(), ".",
                           g_write_seq.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Internal(StrCat("cannot open ", tmp, " for writing: ", std::strerror(errno)));
  }
  size_t written = contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Internal(StrCat("short write to ", tmp, " (", written, " of ", contents.size(),
                           " bytes)"));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Internal(StrCat("cannot rename ", tmp, " to ", path, ": ", std::strerror(errno)));
    std::remove(tmp.c_str());
    return st;
  }
  return Status::Ok();
}

std::vector<std::string> ListDirectory(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return NotFound(StrCat(path, " does not exist"));
    }
    return Internal(StrCat("cannot open ", path, ": ", std::strerror(errno)));
  }
  std::string out;
  char buf[64 * 1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Internal(StrCat("read error on ", path));
  }
  return out;
}

}  // namespace spacefusion
