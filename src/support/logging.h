// Minimal logging and assertion macros.
//
// SF_LOG(level) streams to stderr with a severity tag; SF_CHECK aborts on
// violated invariants. Verbosity is controlled at runtime via
// SetLogThreshold (default: kInfo) so benches can silence compiler chatter.
#ifndef SPACEFUSION_SRC_SUPPORT_LOGGING_H_
#define SPACEFUSION_SRC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace spacefusion {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Sets the minimum level that is emitted. Messages below it are dropped.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards a streamed message; used to give the conditional log macro a
// lower-precedence anchor than operator<< (glog's "voidify" idiom).
class LogVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace spacefusion

#define SF_LOG(level)                                                             \
  (static_cast<int>(::spacefusion::LogLevel::k##level) <                          \
   static_cast<int>(::spacefusion::GetLogThreshold()))                            \
      ? (void)0                                                                   \
      : ::spacefusion::LogVoidify() &                                             \
            ::spacefusion::LogMessage(::spacefusion::LogLevel::k##level,          \
                                      __FILE__, __LINE__)                         \
                .stream()

#define SF_CHECK(cond)                                                            \
  (cond) ? (void)0                                                                \
         : ::spacefusion::LogVoidify() &                                          \
               ::spacefusion::LogMessage(::spacefusion::LogLevel::kFatal,         \
                                         __FILE__, __LINE__)                      \
                       .stream()                                                  \
                   << "Check failed: " #cond " "

#define SF_CHECK_EQ(a, b) SF_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SF_CHECK_NE(a, b) SF_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SF_CHECK_LT(a, b) SF_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SF_CHECK_LE(a, b) SF_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SF_CHECK_GT(a, b) SF_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SF_CHECK_GE(a, b) SF_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SPACEFUSION_SRC_SUPPORT_LOGGING_H_
