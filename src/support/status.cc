#include "src/support/status.h"

namespace spacefusion {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnschedulable:
      return "UNSCHEDULABLE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace spacefusion
