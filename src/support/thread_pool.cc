#include "src/support/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace spacefusion {

namespace {

// Pool the current thread belongs to (nullptr on non-worker threads); the
// nested-submit deadlock guard keys off it.
thread_local const ThreadPool* tl_pool = nullptr;

}  // namespace

int ParseJobs(const char* text) {
  if (text == nullptr || text[0] == '\0') {
    return 0;
  }
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  while (end != nullptr && (*end == ' ' || *end == '\t')) {
    ++end;
  }
  if (end == nullptr || *end != '\0' || value <= 0) {
    return 0;  // garbage / zero / negative: no override
  }
  return value > 256 ? 256 : static_cast<int>(value);
}

int DefaultJobCount() {
  int jobs = ParseJobs(std::getenv("SPACEFUSION_JOBS"));
  if (jobs > 0) {
    return jobs;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) {
    workers = 0;
  }
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  tl_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        cv_.Wait(mu_);
      }
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InPool() const { return tl_pool == this; }

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  if (InPool() || workers() == 0) {
    (*task)();  // deadlock guard: a worker waiting on its own queue
    return future;
  }
  {
    MutexLock lock(mu_);
    queue_.emplace_back([task] { (*task)(); });
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(std::int64_t n,
                             const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (InPool() || workers() == 0 || n == 1) {
    fn(0, n);  // serial path; also the nested-parallelism deadlock guard
    return;
  }

  struct ForState {
    std::atomic<std::int64_t> next{0};
    std::atomic<bool> failed{false};
    std::int64_t total_chunks = 0;
    std::int64_t chunk = 0;
    std::int64_t n = 0;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    Mutex mu;
    CondVar done_cv;
    int pending_tasks SF_GUARDED_BY(mu) = 0;
    std::exception_ptr error SF_GUARDED_BY(mu);
  };
  auto state = std::make_shared<ForState>();
  state->chunk = std::max<std::int64_t>(1, n / (static_cast<std::int64_t>(concurrency()) * 4));
  state->total_chunks = (n + state->chunk - 1) / state->chunk;
  state->n = n;
  state->fn = &fn;

  // Every runner (workers and the caller) claims chunks until exhausted;
  // results land in caller-indexed slots so claim order never matters.
  auto run_chunks = [](ForState* s) {
    while (!s->failed.load(std::memory_order_relaxed)) {
      std::int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->total_chunks) {
        return;
      }
      std::int64_t begin = c * s->chunk;
      std::int64_t end = std::min(s->n, begin + s->chunk);
      try {
        (*s->fn)(begin, end);
      } catch (...) {
        MutexLock lock(s->mu);
        if (!s->error) {
          s->error = std::current_exception();
        }
        s->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::int64_t helper_tasks =
      std::min<std::int64_t>(workers(), std::max<std::int64_t>(0, state->total_chunks - 1));
  {
    // pending_tasks is written before any helper can run (the queue slots
    // are filled under the pool lock) but is itself guarded by state->mu.
    {
      MutexLock slock(state->mu);
      state->pending_tasks = static_cast<int>(helper_tasks);
    }
    MutexLock lock(mu_);
    for (std::int64_t i = 0; i < helper_tasks; ++i) {
      queue_.emplace_back([state, run_chunks] {
        run_chunks(state.get());
        {
          MutexLock slock(state->mu);
          --state->pending_tasks;
        }
        state->done_cv.NotifyOne();
      });
    }
  }
  cv_.NotifyAll();

  run_chunks(state.get());
  {
    MutexLock lock(state->mu);
    while (state->pending_tasks != 0) {
      state->done_cv.Wait(state->mu);
    }
    if (state->error) {
      std::rethrow_exception(state->error);
    }
  }
}

namespace {

Mutex& GlobalPoolMutex() {
  static Mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  // unique_ptr (not a leaked raw pointer) so workers join at process exit
  // and leak checkers stay quiet.
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(DefaultJobCount() - 1);
  }
  return *slot;
}

void ResetGlobalThreadPool(int jobs) {
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  slot.reset();  // join the old workers before spawning replacements
  slot = std::make_unique<ThreadPool>((jobs > 0 ? jobs : DefaultJobCount()) - 1);
}

}  // namespace spacefusion
