#include "src/support/logging.h"

#include <atomic>
#include <cstdio>

namespace spacefusion {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // The whole line (newline included) goes out in one fwrite, so messages
  // logged concurrently from multiple threads cannot interleave mid-line.
  stream_ << "\n";
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace spacefusion
