// Lightweight status / error propagation for SpaceFusion.
//
// The compiler pipeline has many fallible stages (slicing may fail, SMGs may
// be unschedulable). We propagate these as values rather than exceptions so
// that "scheduling failure" — an expected outcome that drives the
// partitioning state machine (paper Sec. 5.2) — stays on the normal control
// path.
#ifndef SPACEFUSION_SRC_SUPPORT_STATUS_H_
#define SPACEFUSION_SRC_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace spacefusion {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller error: malformed graph, bad config
  kUnschedulable,      // expected: SMG cannot be scheduled under resources
  kUnsupported,        // operator / pattern outside the implemented scope
  kInternal,           // invariant violation (a bug)
  kNotFound,
  kDeadlineExceeded,   // serving: request expired before/while compiling
  kResourceExhausted,  // serving: admission queue full or client over quota
  kDataLoss,           // persisted artifact truncated / corrupted / stale
};

// Human-readable name of a status code, e.g. "UNSCHEDULABLE".
const char* StatusCodeName(StatusCode code);

// A success-or-error result without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status Unschedulable(std::string msg) {
  return Status(StatusCode::kUnschedulable, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

// A value-or-error result. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(runtime/explicit)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the current function.
#define SF_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::spacefusion::Status _st = (expr);   \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

// Assigns the value of a StatusOr expression or propagates its error.
#define SF_STATUS_CONCAT_INNER(a, b) a##b
#define SF_STATUS_CONCAT(a, b) SF_STATUS_CONCAT_INNER(a, b)
#define SF_ASSIGN_OR_RETURN(lhs, expr) \
  SF_ASSIGN_OR_RETURN_IMPL(SF_STATUS_CONCAT(_sf_statusor_, __LINE__), lhs, expr)
#define SF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) {                               \
    return tmp.status();                         \
  }                                              \
  lhs = std::move(tmp).value()

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_STATUS_H_
