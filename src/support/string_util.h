// String formatting helpers used for diagnostics and bench output.
#ifndef SPACEFUSION_SRC_SUPPORT_STRING_UTIL_H_
#define SPACEFUSION_SRC_SUPPORT_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace spacefusion {

// Concatenates any streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

// Joins container elements with a separator; each element must be streamable.
template <typename Container>
std::string StrJoin(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) {
      out << sep;
    }
    out << part;
    first = false;
  }
  return out.str();
}

// Splits a string on a single-character delimiter; empty pieces are kept.
std::vector<std::string> StrSplit(const std::string& text, char delim);

// True if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_STRING_UTIL_H_
