// Minimal JSON document model and recursive-descent parser.
//
// The observability stack emits JSON in several places (metrics snapshots,
// Chrome traces, compile reports) with hand-rolled serializers; sf-stats and
// the report round-trip tests need the other direction. JsonValue covers the
// full grammar (objects, arrays, strings with escapes, numbers, bools,
// null) with no dependencies; it is a reader for documents this codebase
// (or its CI artifacts) produced, not a general streaming parser — documents
// are parsed eagerly into one value tree.
#ifndef SPACEFUSION_SRC_SUPPORT_JSON_H_
#define SPACEFUSION_SRC_SUPPORT_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace spacefusion {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  // Parses one complete JSON document (trailing garbage is an error).
  static StatusOr<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; reading the wrong kind returns the zero value.
  bool boolean() const { return kind_ == Kind::kBool && bool_; }
  double number() const { return kind_ == Kind::kNumber ? number_ : 0.0; }
  std::int64_t integer() const { return static_cast<std::int64_t>(number()); }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  // Object members in document order (JSON allows duplicate keys; the
  // serializers here never emit them, and Get returns the first match).
  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
  // Convenience lookups with defaults, for flat report-style documents.
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(const std::string& raw);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_JSON_H_
