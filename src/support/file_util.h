// Filesystem helpers for the artifacts this process persists (compile
// reports, the on-disk program cache).
//
// The one rule both writers share: a file that exists is complete. Writers
// that fopen the final path directly can be interrupted (crash, kill -9,
// full disk) after creating the file but before finishing it, and a later
// reader — possibly a freshly restarted daemon warming its cache — would
// load the torso. AtomicWriteFile writes to a same-directory temp name and
// renames into place, which POSIX guarantees is atomic, so readers observe
// either the old content, the new content, or no file — never a partial
// write. Leftover "<name>.tmp.*" files from interrupted writers are inert:
// no reader ever opens them, and rewriting the entry replaces the final
// name anyway.
#ifndef SPACEFUSION_SRC_SUPPORT_FILE_UTIL_H_
#define SPACEFUSION_SRC_SUPPORT_FILE_UTIL_H_

#include <string>
#include <vector>

#include "src/support/status.h"

namespace spacefusion {

// Atomically replaces `path` with `contents`: writes
// "<path>.tmp.<pid>.<seq>", fsyncs nothing (callers persist caches, not
// databases), and renames over `path`. Parent directories are created.
// On any failure the temp file is removed and `path` is untouched.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

// Reads a whole file. kNotFound when it does not exist, kInternal on I/O
// errors.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Regular-file names in `dir` (no "."/".."), sorted; empty if the
// directory cannot be read. Best-effort, for cache/report enumeration.
std::vector<std::string> ListDirectory(const std::string& dir);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_FILE_UTIL_H_
