// Clang Thread Safety Analysis annotations (SF_GUARDED_BY, SF_REQUIRES, ...)
// and the annotated synchronization primitives the concurrent subsystems use.
//
// The annotations make lock discipline a compile-time property: every shared
// field names the mutex that guards it, every helper that expects a lock held
// declares it, and CI builds with clang's -Wthread-safety -Werror so a missed
// lock is a build break instead of a TSan sample. Under non-clang compilers
// (the default local toolchain is gcc) the macros expand to nothing.
//
// std::mutex itself carries no capability attributes, so annotating fields
// with a raw std::mutex would make clang warn on every correct acquisition.
// The thin wrappers below (Mutex / MutexLock / CondVar / SharedMutex) forward
// to the standard primitives and exist only to carry the attributes; they are
// the required vocabulary for new concurrent state in this codebase (see
// DESIGN.md "Static race analysis").
#ifndef SPACEFUSION_SRC_SUPPORT_THREAD_ANNOTATIONS_H_
#define SPACEFUSION_SRC_SUPPORT_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#define SF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SF_THREAD_ANNOTATION(x)
#endif

// Declares that a class is a lockable capability ("mutex").
#define SF_CAPABILITY(x) SF_THREAD_ANNOTATION(capability(x))
// Declares an RAII class whose lifetime equals a critical section.
#define SF_SCOPED_CAPABILITY SF_THREAD_ANNOTATION(scoped_lockable)
// Field is only read/written with `x` held.
#define SF_GUARDED_BY(x) SF_THREAD_ANNOTATION(guarded_by(x))
// Pointee (not the pointer) is guarded by `x`.
#define SF_PT_GUARDED_BY(x) SF_THREAD_ANNOTATION(pt_guarded_by(x))
// Caller must hold the capability (exclusively / shared) around the call.
#define SF_REQUIRES(...) SF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SF_REQUIRES_SHARED(...) SF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function acquires / releases the capability.
#define SF_ACQUIRE(...) SF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SF_ACQUIRE_SHARED(...) SF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SF_RELEASE(...) SF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SF_RELEASE_SHARED(...) SF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SF_TRY_ACQUIRE(...) SF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Caller must NOT hold the capability (non-reentrant acquisition ahead).
#define SF_EXCLUDES(...) SF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Return value is a reference to a capability-guarded object.
#define SF_RETURN_CAPABILITY(x) SF_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for patterns the analysis cannot express (documented at use).
#define SF_NO_THREAD_SAFETY_ANALYSIS SF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace spacefusion {

// std::mutex with capability attributes. Satisfies BasicLockable, so
// std::condition_variable_any (wrapped as CondVar below) can wait on it.
class SF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SF_ACQUIRE() { mu_.lock(); }
  void unlock() SF_RELEASE() { mu_.unlock(); }
  bool try_lock() SF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII critical section over a Mutex (the std::lock_guard counterpart).
class SF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SF_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. Waits are expressed as explicit loops at
// the call site (`while (!pred) cv.Wait(mu);`) rather than predicate
// lambdas: the analysis cannot see that a lambda runs with the lock held,
// but it tracks the enclosing scope's capability across Wait just fine.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires it before returning.
  void Wait(Mutex& mu) SF_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// std::shared_mutex with capability attributes (reader/writer capability).
class SF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SF_ACQUIRE() { mu_.lock(); }
  void unlock() SF_RELEASE() { mu_.unlock(); }
  void lock_shared() SF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SF_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive (writer) section over a SharedMutex.
class SF_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() SF_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) section over a SharedMutex.
class SF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SF_ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~ReaderMutexLock() SF_RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_SUPPORT_THREAD_ANNOTATIONS_H_
