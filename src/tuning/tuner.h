// Auto-tuning: measures every configuration of a kernel's search space on
// the GPU simulator (substituting for the paper's on-GPU test runs) and
// picks the fastest.
//
// Tuning *time* is also modeled, because Table 4 / Table 5 report it: each
// configuration would be measured with 20 warm-up + 100 timed runs, and the
// early-quit mechanism abandons a configuration once its accumulated test
// time exceeds alpha (=0.25) of the incumbent best configuration's total.
//
// Evaluation is staged: a closed-form screening pass (CostModel::ScreenKernel
// over the ConfigFootprints captured at enumeration — no lowering, no trace)
// scores every config, and only the screened top-K plus every config within
// screen_epsilon of the screened best proceed to full EstimateKernel
// fidelity. The screen score is a lower bound of the full estimate, and the
// epsilon band guarantees near-ties are never dropped on screen noise.
//
// Host-side evaluation is parallelized over the global thread pool
// (SPACEFUSION_JOBS), but the result is bit-identical to the serial sweep:
// per-config costs are written to indexed slots, the argmin is a serial
// scan (lowest index wins ties), and the early-quit charge is re-derived
// from that scan's incumbent — the modeled GPU still measures configs one
// after another, so simulated_tuning_seconds never depends on the job
// count. simulated_tuning_seconds covers the configs that reach full
// evaluation: those are the ones the modeled GPU measures.
#ifndef SPACEFUSION_SRC_TUNING_TUNER_H_
#define SPACEFUSION_SRC_TUNING_TUNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/schedule/pipeline.h"
#include "src/sim/cost_model.h"

namespace spacefusion {

class CostCache;

struct TuningStats {
  std::int64_t configs_enumerated = 0;  // search-space size before any cut
  int configs_screened = 0;  // configs scored by stage 1 (0 = screening inactive)
  int configs_tried = 0;     // configs that reached full-fidelity evaluation
  int configs_early_quit = 0;
  double best_time_us = 0.0;
  // Emulated wall-clock the measurement runs would take on the GPU.
  double simulated_tuning_seconds = 0.0;

  // ---- Shape-bucket config transfer (in-memory only; none of these are
  // serialized into .sfpc blobs, keeping persisted programs byte-identical
  // to the pre-transfer format). configs_transfer_seeded counts admitted
  // configs the modeled GPU measured first because a neighboring bucket's
  // prior named them; admitted_configs carries the admitted set best
  // measured config first, the prior handed to the *next* bucket.
  int configs_transfer_seeded = 0;
  std::uint64_t transfer_signature = 0;  // shape-free schedule identity
  std::vector<std::string> admitted_configs;
};

// What one tuned kernel contributes to the engine's cross-bucket transfer
// store: its shape-free signature plus its admitted configs, best first.
struct TunedKernelRecord {
  std::uint64_t signature = 0;
  std::vector<std::string> admitted_configs;
};

// Default for TunerOptions::screen_top_k, from SPACEFUSION_SCREEN_TOPK:
// unset => -1 (auto), 0 disables screening, k > 0 pins the stage-1 cut.
// Cached after the first read.
int ScreenTopKFromEnv();

struct TunerOptions {
  double early_quit_alpha = 0.25;
  int warmup_runs = 20;
  int timed_runs = 100;
  bool enable_early_quit = true;
  // Stage-1 screening cut: -1 = auto (max(8, 10% of the sweep)), 0 = off,
  // k > 0 = exactly k configs (plus the guaranteed-admission band).
  int screen_top_k = ScreenTopKFromEnv();
  // Guaranteed admission: any config whose screen score is within this
  // relative margin of the screened best is always fully evaluated, even
  // beyond top-K.
  double screen_epsilon = 0.02;
  // Config transfer across shape buckets: maps the schedule being tuned to
  // the nearest already-tuned bucket's admitted configs (best first), or
  // empty for none. A prior reorders only the *modeled measurement
  // schedule* — transferred configs run first, so a near-optimal incumbent
  // early-quits the rest and simulated_tuning_seconds collapses — it never
  // changes which configs are admitted or which one wins. Like
  // EngineOptions::analyze, deliberately excluded from CompileOptionsDigest.
  std::function<std::vector<std::string>(const SmgSchedule&)> transfer_prior;
};

// Shape-free variant of the cost-cache schedule signature: built on
// TopologyHash instead of StructuralHash, so the same kernel template tuned
// at two different bucket shapes collides. Keys the engine's cross-bucket
// config-transfer store.
std::uint64_t TransferSignature(const SmgSchedule& schedule, const GpuArch& arch,
                                const ResourceConfig& rc);

// Tunes one kernel in place: applies the best config to `result->schedule`.
// With a CostCache, repeated (kernel signature, config) evaluations across
// blocks and candidate programs are computed once (results are identical
// either way; the cache memoizes a pure function).
TuningStats TuneKernel(SlicingResult* result, const CostModel& cost, const ResourceConfig& rc,
                       const TunerOptions& options = TunerOptions(), CostCache* cache = nullptr);

// Picks the config nearest an expert default (64-wide tiles, 64-step
// temporal) without measuring — the Base(SS)/Base+TS ablation variants.
void ApplyExpertConfig(SlicingResult* result, const ResourceConfig& rc);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TUNING_TUNER_H_
