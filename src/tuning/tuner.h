// Auto-tuning: measures every configuration of a kernel's search space on
// the GPU simulator (substituting for the paper's on-GPU test runs) and
// picks the fastest.
//
// Tuning *time* is also modeled, because Table 4 / Table 5 report it: each
// configuration would be measured with 20 warm-up + 100 timed runs, and the
// early-quit mechanism abandons a configuration once its accumulated test
// time exceeds alpha (=0.25) of the incumbent best configuration's total.
//
// Host-side evaluation is parallelized over the global thread pool
// (SPACEFUSION_JOBS), but the result is bit-identical to the serial sweep:
// per-config costs are written to indexed slots, the argmin is a serial
// scan (lowest index wins ties), and the early-quit charge is re-derived
// from that scan's incumbent — the modeled GPU still measures configs one
// after another, so simulated_tuning_seconds never depends on the job
// count.
#ifndef SPACEFUSION_SRC_TUNING_TUNER_H_
#define SPACEFUSION_SRC_TUNING_TUNER_H_

#include "src/schedule/pipeline.h"
#include "src/sim/cost_model.h"

namespace spacefusion {

class CostCache;

struct TuningStats {
  int configs_tried = 0;
  int configs_early_quit = 0;
  double best_time_us = 0.0;
  // Emulated wall-clock the measurement runs would take on the GPU.
  double simulated_tuning_seconds = 0.0;
};

struct TunerOptions {
  double early_quit_alpha = 0.25;
  int warmup_runs = 20;
  int timed_runs = 100;
  bool enable_early_quit = true;
};

// Tunes one kernel in place: applies the best config to `result->schedule`.
// With a CostCache, repeated (kernel signature, config) evaluations across
// blocks and candidate programs are computed once (results are identical
// either way; the cache memoizes a pure function).
TuningStats TuneKernel(SlicingResult* result, const CostModel& cost, const ResourceConfig& rc,
                       const TunerOptions& options = TunerOptions(), CostCache* cache = nullptr);

// Picks the config nearest an expert default (64-wide tiles, 64-step
// temporal) without measuring — the Base(SS)/Base+TS ablation variants.
void ApplyExpertConfig(SlicingResult* result, const ResourceConfig& rc);

}  // namespace spacefusion

#endif  // SPACEFUSION_SRC_TUNING_TUNER_H_
