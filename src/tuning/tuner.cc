#include "src/tuning/tuner.h"

#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/schedule/lowering.h"
#include "src/support/logging.h"

namespace spacefusion {

TuningStats TuneKernel(SlicingResult* result, const CostModel& cost, const ResourceConfig& rc,
                       const TunerOptions& options) {
  ScopedSpan span("tuner.measure", "tuning");
  span.Arg("kernel", result->schedule.graph.name())
      .Arg("search_space", static_cast<std::int64_t>(result->configs.size()));
  TuningStats stats;
  const ScheduleConfig* best = nullptr;
  double best_time = 0.0;
  double best_total = 0.0;  // incumbent's full measurement time (us)

  for (const ScheduleConfig& config : result->configs) {
    result->schedule.ApplyConfig(config);
    PlanMemory(&result->schedule, rc);
    AddressMap probe;
    KernelSpec spec = LowerSchedule(result->schedule, &probe);
    double t = cost.EstimateKernel(spec).time_us;
    ++stats.configs_tried;

    const int total_runs = options.warmup_runs + options.timed_runs;
    double full_measurement = t * total_runs;
    double charged = full_measurement;
    if (options.enable_early_quit && best != nullptr &&
        full_measurement > options.early_quit_alpha * best_total) {
      // The runner abandons this config once it has burned alpha x the
      // incumbent's total test time.
      charged = std::min(full_measurement, options.early_quit_alpha * best_total + t);
      if (charged < full_measurement) {
        ++stats.configs_early_quit;
      }
    }
    stats.simulated_tuning_seconds += charged * 1e-6;

    if (best == nullptr || t < best_time) {
      best = &config;
      best_time = t;
      best_total = full_measurement;
    }
  }

  SF_CHECK(best != nullptr) << "tuner called with empty search space";
  result->schedule.ApplyConfig(*best);
  PlanMemory(&result->schedule, rc);
  stats.best_time_us = best_time;

  SF_COUNTER_ADD("tuner.configs_tried", stats.configs_tried);
  SF_COUNTER_ADD("tuner.configs_early_quit", stats.configs_early_quit);
  SF_HISTOGRAM_OBSERVE("tuner.kernel_best_us", stats.best_time_us);
  span.Arg("configs_tried", stats.configs_tried)
      .Arg("early_quit", stats.configs_early_quit)
      .Arg("best_us", stats.best_time_us)
      .Arg("simulated_s", stats.simulated_tuning_seconds);
  return stats;
}

void ApplyExpertConfig(SlicingResult* result, const ResourceConfig& rc) {
  SF_TRACE_SPAN("tuner.expert_config", "tuning");
  SF_COUNTER_ADD("tuner.expert_configs_applied", 1);
  // Expert knowledge default: 64-wide tiles and a 64-element temporal step,
  // or the nearest feasible config.
  const ScheduleConfig* best = nullptr;
  double best_score = 0.0;
  for (const ScheduleConfig& config : result->configs) {
    double score = 0.0;
    for (std::int64_t b : config.spatial_blocks) {
      score -= std::fabs(std::log2(static_cast<double>(b)) - 6.0);
    }
    if (config.use_temporal) {
      // An expert writing a hand-fused kernel serializes the reduction dim
      // (the FlashAttention recipe), so temporal configs are preferred when
      // the slicers offer them.
      score += 100.0;
      score -= std::fabs(std::log2(static_cast<double>(config.temporal_step)) - 6.0);
    }
    if (best == nullptr || score > best_score) {
      best = &config;
      best_score = score;
    }
  }
  SF_CHECK(best != nullptr);
  result->schedule.ApplyConfig(*best);
  PlanMemory(&result->schedule, rc);
}

}  // namespace spacefusion
