#include "src/tuning/tuner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/schedule/lowering.h"
#include "src/sim/cost_cache.h"
#include "src/support/logging.h"
#include "src/support/thread_pool.h"

namespace spacefusion {

namespace {

std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

// Identity of a schedule template for cost-cache keying: the same graph
// with the same slicing decisions on the same hardware lowers to the same
// cost for any given config. Block sizes are excluded — they are the
// config, i.e. the other half of the cache key.
std::uint64_t ScheduleSignature(const SmgSchedule& schedule, const GpuArch& arch,
                                const ResourceConfig& rc) {
  std::uint64_t h = schedule.graph.StructuralHash();
  for (const DimSlice& slice : schedule.spatial) {
    h = HashCombine(h, static_cast<std::uint64_t>(slice.dim));
  }
  h = HashCombine(h, schedule.has_temporal ? static_cast<std::uint64_t>(schedule.temporal.dim) + 1
                                           : 0);
  h = HashCombine(h, std::hash<std::string>{}(arch.name));
  h = HashCombine(h, static_cast<std::uint64_t>(rc.smem_per_block_max));
  h = HashCombine(h, static_cast<std::uint64_t>(rc.reg_per_block_max));
  return h;
}

}  // namespace

std::uint64_t TransferSignature(const SmgSchedule& schedule, const GpuArch& arch,
                                const ResourceConfig& rc) {
  std::uint64_t h = schedule.graph.TopologyHash();
  for (const DimSlice& slice : schedule.spatial) {
    h = HashCombine(h, static_cast<std::uint64_t>(slice.dim));
  }
  h = HashCombine(h, schedule.has_temporal ? static_cast<std::uint64_t>(schedule.temporal.dim) + 1
                                           : 0);
  h = HashCombine(h, std::hash<std::string>{}(arch.name));
  h = HashCombine(h, static_cast<std::uint64_t>(rc.smem_per_block_max));
  h = HashCombine(h, static_cast<std::uint64_t>(rc.reg_per_block_max));
  return h;
}

int ScreenTopKFromEnv() {
  static const int cached = [] {
    const char* env = std::getenv("SPACEFUSION_SCREEN_TOPK");
    if (env == nullptr || *env == '\0') {
      return -1;
    }
    return std::atoi(env);
  }();
  return cached;
}

TuningStats TuneKernel(SlicingResult* result, const CostModel& cost, const ResourceConfig& rc,
                       const TunerOptions& options, CostCache* cache) {
  ScopedSpan span("tuner.measure", "tuning");
  span.Arg("kernel", result->schedule.graph.name())
      .Arg("search_space", static_cast<std::int64_t>(result->configs.size()));
  TuningStats stats;
  const std::int64_t n = static_cast<std::int64_t>(result->configs.size());
  SF_CHECK(n > 0) << "tuner called with empty search space";

  const std::uint64_t sig =
      cache != nullptr ? ScheduleSignature(result->schedule, cost.arch(), rc) : 0;
  PhaseAccumulator* phases = obs_internal::CurrentPhaseAccumulator();

  // ---- Stage 1: analytical screening --------------------------------------
  // Every config gets a closed-form lower-bound score from its enumeration
  // footprint (no ApplyConfig / PlanMemory / lowering). The screened top-K
  // plus the guaranteed-admission epsilon band reach full fidelity; the rest
  // are dropped. Scores land in indexed slots and the selection scan is
  // serial, so admission is bit-identical across SPACEFUSION_JOBS.
  const std::int64_t top_k = options.screen_top_k < 0
                                 ? std::max<std::int64_t>(8, n / 10)
                                 : static_cast<std::int64_t>(options.screen_top_k);
  const bool screening = top_k > 0 && top_k < n &&
                         result->footprints.size() == result->configs.size();
  std::vector<std::int64_t> admitted;  // ascending indices into configs
  if (screening) {
    ScopedSpan screen_span("tuner.screen", "tuning");
    const ScreenContext ctx = MakeScreenContext(result->schedule);
    std::vector<double> score(static_cast<size_t>(n));
    GlobalThreadPool().ParallelFor(n, [&, phases](std::int64_t begin, std::int64_t end) {
      ScopedPhaseHandoff handoff(phases);
      for (std::int64_t i = begin; i < end; ++i) {
        score[static_cast<size_t>(i)] =
            cost.ScreenKernel(LowerForScreening(ctx, result->footprints[static_cast<size_t>(i)]));
      }
    });
    std::vector<std::int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&score](std::int64_t a, std::int64_t b) {
      double sa = score[static_cast<size_t>(a)], sb = score[static_cast<size_t>(b)];
      return sa < sb || (sa == sb && a < b);
    });
    std::vector<char> admit(static_cast<size_t>(n), 0);
    for (std::int64_t k = 0; k < top_k; ++k) {
      admit[static_cast<size_t>(order[static_cast<size_t>(k)])] = 1;
    }
    const double band = score[static_cast<size_t>(order[0])] * (1.0 + options.screen_epsilon);
    for (std::int64_t i = 0; i < n; ++i) {
      if (score[static_cast<size_t>(i)] <= band) {
        admit[static_cast<size_t>(i)] = 1;
      }
    }
    for (std::int64_t i = 0; i < n; ++i) {
      if (admit[static_cast<size_t>(i)] != 0) {
        admitted.push_back(i);
      }
    }
    stats.configs_screened = static_cast<int>(n);
    SF_COUNTER_ADD("tuner.configs_screened", n);
    screen_span.Arg("screened", n).Arg("admitted", static_cast<std::int64_t>(admitted.size()));
  } else {
    admitted.resize(static_cast<size_t>(n));
    std::iota(admitted.begin(), admitted.end(), 0);
  }

  // ---- Stage 2: full-fidelity measurement sweep ---------------------------
  // Every admitted config's cost lands in its own indexed slot, so the
  // parallel sweep computes exactly what the serial loop would. Each chunk
  // clones the schedule once and probes its configs on the clone, keeping
  // ApplyConfig/PlanMemory off shared state.
  std::vector<double> time_us(static_cast<size_t>(n));
  const std::int64_t n_admitted = static_cast<std::int64_t>(admitted.size());
  GlobalThreadPool().ParallelFor(n_admitted, [&, phases](std::int64_t begin, std::int64_t end) {
    ScopedPhaseHandoff handoff(phases);
    SmgSchedule local = result->schedule;
    for (std::int64_t j = begin; j < end; ++j) {
      const std::int64_t i = admitted[static_cast<size_t>(j)];
      const ScheduleConfig& config = result->configs[static_cast<size_t>(i)];
      auto eval = [&]() -> KernelCost {
        local.ApplyConfig(config);
        PlanMemory(&local, rc);
        AddressMap probe;
        KernelSpec spec = LowerSchedule(local, &probe);
        return cost.EstimateKernel(spec);
      };
      time_us[static_cast<size_t>(i)] =
          (cache != nullptr ? cache->GetOrCompute(sig, config.ToString(), eval) : eval()).time_us;
    }
  });

  // Serial selection scan in config order: deterministic argmin, lowest
  // index wins ties. The winner never depends on a transfer prior or the
  // job count — both only reshuffle *when* the modeled GPU measures things.
  std::int64_t best_idx = -1;
  double best_time = 0.0;
  for (std::int64_t i : admitted) {
    double t = time_us[static_cast<size_t>(i)];
    ++stats.configs_tried;
    if (best_idx < 0 || t < best_time) {
      best_idx = i;
      best_time = t;
    }
  }

  // Measurement order on the modeled GPU: ascending config index, unless a
  // neighboring bucket's prior names admitted configs — those run first (in
  // prior order, i.e. the neighbor's best first), so a near-optimal
  // incumbent is established immediately and the rest early-quit.
  std::vector<std::int64_t> charge_order = admitted;
  if (options.transfer_prior) {
    const std::vector<std::string> prior = options.transfer_prior(result->schedule);
    if (!prior.empty()) {
      std::vector<char> taken(static_cast<size_t>(n), 0);
      std::vector<std::int64_t> seeded;
      for (const std::string& p : prior) {
        for (std::int64_t i : admitted) {
          if (taken[static_cast<size_t>(i)] == 0 &&
              result->configs[static_cast<size_t>(i)].ToString() == p) {
            taken[static_cast<size_t>(i)] = 1;
            seeded.push_back(i);
            break;
          }
        }
      }
      if (!seeded.empty()) {
        stats.configs_transfer_seeded = static_cast<int>(seeded.size());
        for (std::int64_t i : admitted) {
          if (taken[static_cast<size_t>(i)] == 0) {
            seeded.push_back(i);
          }
        }
        charge_order = std::move(seeded);
      }
    }
  }

  // Early-quit accounting over the measurement order: 20 warm-up + 100
  // timed runs per config, abandoned at alpha x the incumbent's total — so
  // Table 4/5's simulated tuning seconds are independent of host-side
  // parallelism. Only admitted configs are measured on the modeled GPU.
  const int total_runs = options.warmup_runs + options.timed_runs;
  double incumbent_time = 0.0;
  double incumbent_total = 0.0;  // incumbent's full measurement time (us)
  bool have_incumbent = false;
  for (std::int64_t i : charge_order) {
    const double t = time_us[static_cast<size_t>(i)];
    const double full_measurement = t * total_runs;
    double charged = full_measurement;
    if (options.enable_early_quit && have_incumbent &&
        full_measurement > options.early_quit_alpha * incumbent_total) {
      // The runner abandons this config once it has burned alpha x the
      // incumbent's total test time.
      charged = std::min(full_measurement, options.early_quit_alpha * incumbent_total + t);
      if (charged < full_measurement) {
        ++stats.configs_early_quit;
      }
    }
    stats.simulated_tuning_seconds += charged * 1e-6;
    if (!have_incumbent || t < incumbent_time) {
      have_incumbent = true;
      incumbent_time = t;
      incumbent_total = full_measurement;
    }
  }

  result->schedule.ApplyConfig(result->configs[static_cast<size_t>(best_idx)]);
  PlanMemory(&result->schedule, rc);
  stats.best_time_us = best_time;
  stats.transfer_signature = TransferSignature(result->schedule, cost.arch(), rc);

  // Export the admitted set best-measured-first: the transfer prior handed
  // to the next bucket (capped — a prior longer than this buys nothing).
  std::vector<std::int64_t> ranked = admitted;
  std::sort(ranked.begin(), ranked.end(), [&time_us](std::int64_t a, std::int64_t b) {
    const double ta = time_us[static_cast<size_t>(a)], tb = time_us[static_cast<size_t>(b)];
    return ta < tb || (ta == tb && a < b);
  });
  constexpr size_t kMaxPriorConfigs = 32;
  for (size_t k = 0; k < ranked.size() && k < kMaxPriorConfigs; ++k) {
    stats.admitted_configs.push_back(
        result->configs[static_cast<size_t>(ranked[k])].ToString());
  }

  SF_COUNTER_ADD("tuner.configs_tried", stats.configs_tried);
  SF_COUNTER_ADD("tuner.configs_early_quit", stats.configs_early_quit);
  SF_HISTOGRAM_OBSERVE("tuner.kernel_best_us", stats.best_time_us);
  span.Arg("configs_screened", stats.configs_screened)
      .Arg("configs_tried", stats.configs_tried)
      .Arg("early_quit", stats.configs_early_quit)
      .Arg("best_us", stats.best_time_us)
      .Arg("simulated_s", stats.simulated_tuning_seconds);
  return stats;
}

void ApplyExpertConfig(SlicingResult* result, const ResourceConfig& rc) {
  SF_TRACE_SPAN("tuner.expert_config", "tuning");
  SF_COUNTER_ADD("tuner.expert_configs_applied", 1);
  // Expert knowledge default: 64-wide tiles and a 64-element temporal step,
  // or the nearest feasible config.
  const ScheduleConfig* best = nullptr;
  double best_score = 0.0;
  for (const ScheduleConfig& config : result->configs) {
    double score = 0.0;
    for (std::int64_t b : config.spatial_blocks) {
      score -= std::fabs(std::log2(static_cast<double>(b)) - 6.0);
    }
    if (config.use_temporal) {
      // An expert writing a hand-fused kernel serializes the reduction dim
      // (the FlashAttention recipe), so temporal configs are preferred when
      // the slicers offer them.
      score += 100.0;
      score -= std::fabs(std::log2(static_cast<double>(config.temporal_step)) - 6.0);
    }
    if (best == nullptr || score > best_score) {
      best = &config;
      best_score = score;
    }
  }
  SF_CHECK(best != nullptr);
  result->schedule.ApplyConfig(*best);
  PlanMemory(&result->schedule, rc);
}

}  // namespace spacefusion
